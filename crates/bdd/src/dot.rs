//! Graphviz (`dot`) export of BDDs, for debugging and documentation.

use crate::hash::FxHashSet;
use crate::manager::BddManager;
use crate::node::Bdd;
use std::fmt::Write;

impl BddManager {
    /// Render `f` as a Graphviz digraph. Variable names are supplied by the
    /// caller (indexed by variable order position); unnamed variables print
    /// as `x<i>`.
    pub fn to_dot(&self, f: Bdd, names: &[&str]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph bdd {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  f [label=\"f\", shape=plaintext];");
        let _ = writeln!(out, "  n0 [label=\"0\", shape=box];");
        let _ = writeln!(out, "  n1 [label=\"1\", shape=box];");
        let _ = writeln!(out, "  f -> n{};", f.raw());
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![f.raw()];
        while let Some(id) = stack.pop() {
            if id < 2 || !seen.insert(id) {
                continue;
            }
            let b = Bdd(id);
            let v = self.root_var(b).unwrap();
            let name = names
                .get(v.index())
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("x{}", v.index()));
            let _ = writeln!(out, "  n{id} [label=\"{name}\", shape=circle];");
            let lo = self.low(b).raw();
            let hi = self.high(b).raw();
            let _ = writeln!(out, "  n{id} -> n{lo} [style=dashed];");
            let _ = writeln!(out, "  n{id} -> n{hi};");
            stack.push(lo);
            stack.push(hi);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut m = BddManager::new();
        let vs = m.new_vars(2);
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let f = m.and(a, b);
        let dot = m.to_dot(f, &["a", "b"]);
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("style=dashed"));
        // Two decision nodes plus terminals plus the f pointer.
        assert_eq!(dot.matches("shape=circle").count(), 2);
    }

    #[test]
    fn dot_of_constant_has_no_decision_nodes() {
        let m = BddManager::new();
        let dot = m.to_dot(Bdd::TRUE, &[]);
        assert_eq!(dot.matches("shape=circle").count(), 0);
        assert!(dot.contains("f -> n1;"));
    }

    #[test]
    fn unnamed_variables_fall_back_to_index() {
        let mut m = BddManager::new();
        let vs = m.new_vars(2);
        let b = m.var(vs[1]);
        let dot = m.to_dot(b, &["only_one_name"]);
        assert!(dot.contains("label=\"x1\""));
    }
}
