//! Property-based tests: the BDD algebra must agree with truth-table
//! semantics on random boolean expressions, and canonical form must make
//! semantic equality coincide with handle equality.

use cmc_bdd::{Bdd, BddManager, Var};
use proptest::prelude::*;

/// A random boolean expression over `NVARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Implies(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

const NVARS: usize = 5;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Implies(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn eval_expr(e: &Expr, bits: u32) -> bool {
    match e {
        Expr::Const(b) => *b,
        Expr::Var(i) => bits >> i & 1 == 1,
        Expr::Not(a) => !eval_expr(a, bits),
        Expr::And(a, b) => eval_expr(a, bits) && eval_expr(b, bits),
        Expr::Or(a, b) => eval_expr(a, bits) || eval_expr(b, bits),
        Expr::Xor(a, b) => eval_expr(a, bits) ^ eval_expr(b, bits),
        Expr::Implies(a, b) => !eval_expr(a, bits) || eval_expr(b, bits),
        Expr::Ite(a, b, c) => {
            if eval_expr(a, bits) {
                eval_expr(b, bits)
            } else {
                eval_expr(c, bits)
            }
        }
    }
}

fn build(m: &mut BddManager, vars: &[Var], e: &Expr) -> Bdd {
    match e {
        Expr::Const(true) => Bdd::TRUE,
        Expr::Const(false) => Bdd::FALSE,
        Expr::Var(i) => m.var(vars[*i]),
        Expr::Not(a) => {
            let fa = build(m, vars, a);
            m.not(fa)
        }
        Expr::And(a, b) => {
            let (fa, fb) = (build(m, vars, a), build(m, vars, b));
            m.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let (fa, fb) = (build(m, vars, a), build(m, vars, b));
            m.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let (fa, fb) = (build(m, vars, a), build(m, vars, b));
            m.xor(fa, fb)
        }
        Expr::Implies(a, b) => {
            let (fa, fb) = (build(m, vars, a), build(m, vars, b));
            m.implies(fa, fb)
        }
        Expr::Ite(a, b, c) => {
            let fa = build(m, vars, a);
            let fb = build(m, vars, b);
            let fc = build(m, vars, c);
            m.ite(fa, fb, fc)
        }
    }
}

proptest! {
    /// BDD evaluation equals direct expression evaluation on every input.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = build(&mut m, &vars, &e);
        for bits in 0u32..(1 << NVARS) {
            prop_assert_eq!(
                m.eval(f, |v| bits >> v.index() & 1 == 1),
                eval_expr(&e, bits),
                "disagreement at input {:05b}", bits
            );
        }
    }

    /// Semantically equal expressions build the same handle (canonicity).
    #[test]
    fn canonical_form(a in arb_expr(), b in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let fa = build(&mut m, &vars, &a);
        let fb = build(&mut m, &vars, &b);
        let sem_equal = (0u32..(1 << NVARS)).all(|bits| eval_expr(&a, bits) == eval_expr(&b, bits));
        prop_assert_eq!(fa == fb, sem_equal);
    }

    /// sat_count agrees with brute-force counting.
    #[test]
    fn sat_count_matches_enumeration(e in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = build(&mut m, &vars, &e);
        let brute = (0u32..(1 << NVARS)).filter(|&bits| eval_expr(&e, bits)).count();
        prop_assert_eq!(m.sat_count(f, NVARS), brute as f64);
        prop_assert_eq!(m.all_sat(f, NVARS).len(), brute);
    }

    /// ∃x.f is the OR of the two cofactors; ∀x.f the AND (semantically).
    #[test]
    fn quantifier_semantics(e in arb_expr(), qi in 0..NVARS) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = build(&mut m, &vars, &e);
        let cube = m.cube(&[vars[qi]]);
        let ex = m.exists(f, cube);
        let fa = m.forall(f, cube);
        for bits in 0u32..(1 << NVARS) {
            let with = bits | (1 << qi);
            let without = bits & !(1 << qi);
            let ev = |g: Bdd, bb: u32| m.eval(g, |v| bb >> v.index() & 1 == 1);
            prop_assert_eq!(ev(ex, bits), ev(f, with) || ev(f, without));
            prop_assert_eq!(ev(fa, bits), ev(f, with) && ev(f, without));
        }
    }

    /// and_exists(f, g, cube) == exists(and(f, g), cube) for random cubes.
    #[test]
    fn relational_product_consistent(
        a in arb_expr(),
        b in arb_expr(),
        mask in 0u32..(1 << NVARS)
    ) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let fa = build(&mut m, &vars, &a);
        let fb = build(&mut m, &vars, &b);
        let qvars: Vec<Var> = (0..NVARS).filter(|i| mask >> i & 1 == 1).map(|i| vars[i]).collect();
        let cube = m.cube(&qvars);
        let direct = m.and_exists(fa, fb, cube);
        let conj = m.and(fa, fb);
        let composed = m.exists(conj, cube);
        prop_assert_eq!(direct, composed);
    }

    /// Double negation and de Morgan hold as handle equalities.
    #[test]
    fn algebraic_laws(a in arb_expr(), b in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let fa = build(&mut m, &vars, &a);
        let fb = build(&mut m, &vars, &b);
        let nfa = m.not(fa);
        prop_assert_eq!(m.not(nfa), fa);
        let conj = m.and(fa, fb);
        let lhs = m.not(conj);
        let nfb = m.not(fb);
        let rhs = m.or(nfa, nfb);
        prop_assert_eq!(lhs, rhs);
        // Distribution: a ∧ (b ∨ a) = a.
        let bo = m.or(fb, fa);
        prop_assert_eq!(m.and(fa, bo), fa);
    }
}
