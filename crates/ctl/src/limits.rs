//! One configurable home for every explicit-engine ceiling.
//!
//! Before PR 9 the repo had two disjoint width cliffs that did not agree
//! with each other: cmc-ctl refused more than `MAX_EXPLICIT_PROPS = 24`
//! propositions (the dense `2^n` universe) and the SMV driver capped
//! models at a 20-encoded-bit budget. Both were *bit* limits standing in
//! for what is really a *memory* limit — the number of states the engine
//! may materialise. [`ExplicitLimits`] unifies them:
//!
//! * `dense_bits` — the width up to which the dense `2^n`-universe kernel
//!   is used (exact `sat_states` counts, no interner overhead). Beyond it
//!   the reachable-only hash-compacted kernel takes over; there is no
//!   hard width ceiling any more.
//! * `max_states` — the opt-in memory budget, counted in *states* (not
//!   bits): reachable construction refuses with
//!   [`crate::CheckError::StateBudget`] once discovery would exceed it.
//!   `None` disables the guard entirely.

/// Width/memory budgets for the explicit engine. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplicitLimits {
    /// Widths `<= dense_bits` run on the dense `2^n` universe; wider
    /// targets go through the reachable-only interned kernel.
    pub dense_bits: usize,
    /// Budget on materialised states in reachable mode (`None` = unbounded).
    pub max_states: Option<usize>,
}

impl ExplicitLimits {
    /// Dense-universe width used when nothing is configured; equals the
    /// pre-PR-9 `MAX_EXPLICIT_PROPS` so small targets behave (and count)
    /// exactly as before.
    pub const DEFAULT_DENSE_BITS: usize = 24;

    /// Default state budget for reachable construction: 2^21 states keeps
    /// the interner + CSR comfortably in memory while admitting every
    /// composition the bench sweeps exercise.
    pub const DEFAULT_MAX_STATES: usize = 1 << 21;

    /// Limits with the guard disabled (`max_states: None`).
    pub fn unbounded() -> Self {
        ExplicitLimits {
            dense_bits: Self::DEFAULT_DENSE_BITS,
            max_states: None,
        }
    }

    /// Limits with an explicit state budget.
    pub fn budgeted(max_states: usize) -> Self {
        ExplicitLimits {
            dense_bits: Self::DEFAULT_DENSE_BITS,
            max_states: Some(max_states),
        }
    }

    /// The budget as a plain bound (`usize::MAX` when disabled).
    pub fn state_budget(&self) -> usize {
        self.max_states.unwrap_or(usize::MAX)
    }
}

impl Default for ExplicitLimits {
    fn default() -> Self {
        ExplicitLimits {
            dense_bits: Self::DEFAULT_DENSE_BITS,
            max_states: Some(Self::DEFAULT_MAX_STATES),
        }
    }
}
