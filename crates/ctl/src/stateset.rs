//! Dense sets of states for the explicit-state checker's fixpoints.
//!
//! A state of a system over `n` propositions is a subset of the alphabet,
//! i.e. an `n`-bit pattern; a *set of states* is therefore a subset of
//! `2^n` and is stored as a dense bitset indexed by the pattern. All the
//! fixpoint computations of the labelling algorithm are bulk bitwise
//! operations over these words.

use cmc_kripke::State;

/// A dense set of states over a fixed-size state space `2^n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSet {
    words: Vec<u64>,
    universe: usize,
}

impl StateSet {
    /// The empty set over a state space of `universe` states.
    pub fn empty(universe: usize) -> Self {
        StateSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// The full set over a state space of `universe` states: whole words
    /// are filled in one store each and the tail word is masked, instead
    /// of inserting `universe` bits one at a time.
    pub fn full(universe: usize) -> Self {
        let mut s = StateSet::empty(universe);
        for w in s.words.iter_mut() {
            *w = !0;
        }
        let tail = universe % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Number of states in the universe (not the set).
    pub fn universe(&self) -> usize {
        self.universe
    }

    #[inline]
    fn index_of(s: State) -> usize {
        s.0 as usize
    }

    /// Insert a state.
    #[inline]
    pub fn insert(&mut self, s: State) {
        self.insert_index(Self::index_of(s));
    }

    /// Insert a state by its dense index (the `2^n` pattern).
    #[inline]
    pub fn insert_index(&mut self, i: usize) {
        debug_assert!(i < self.universe);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Remove a state.
    #[inline]
    pub fn remove(&mut self, s: State) {
        let i = Self::index_of(s);
        debug_assert!(i < self.universe);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, s: State) -> bool {
        self.contains_index(Self::index_of(s))
    }

    /// Membership test by dense index.
    #[inline]
    pub fn contains_index(&self, i: usize) -> bool {
        debug_assert!(i < self.universe);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of states in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &StateSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &StateSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self − other`).
    pub fn difference_with(&mut self, other: &StateSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Complement within the universe.
    pub fn complement(&self) -> StateSet {
        let mut out = StateSet::empty(self.universe);
        for (o, w) in out.words.iter_mut().zip(&self.words) {
            *o = !w;
        }
        // Mask off bits beyond the universe.
        let tail = self.universe % 64;
        if tail != 0 {
            if let Some(last) = out.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        out
    }

    /// `self ⊆ other`.
    pub fn is_subset_of(&self, other: &StateSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Mutable backing words (64 states per word), for block-parallel
    /// passes that stitch per-block results into disjoint word ranges.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Word-scan iterator over member indices restricted to
    /// `range` (which must be word-aligned at its start; the frontier
    /// blocks from [`crate::csr::CsrIndex::blocks`] always are).
    pub(crate) fn iter_indices_in(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = usize> + '_ {
        debug_assert_eq!(range.start % 64, 0);
        let first_word = range.start / 64;
        let last_word = range.end.div_ceil(64).min(self.words.len());
        let end = range.end;
        self.words[first_word..last_word]
            .iter()
            .enumerate()
            .flat_map(move |(wi, &w)| {
                let base = (first_word + wi) * 64;
                let mut bits = w;
                std::iter::from_fn(move || loop {
                    if bits == 0 {
                        return None;
                    }
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let idx = base + b;
                    if idx < end {
                        return Some(idx);
                    }
                    bits = 0;
                })
            })
    }

    /// Iterate the member states in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = State> + '_ {
        self.iter_indices().map(|i| State(i as u128))
    }

    /// Word-scan iterator over member *indices* in increasing order:
    /// `trailing_zeros` over each 64-bit word, so sparse sets cost one
    /// branch per word plus one step per member. This is the hot
    /// iteration primitive of the frontier kernel.
    pub fn iter_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = StateSet::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = StateSet::full(10);
        assert_eq!(f.len(), 10);
        assert!(e.is_subset_of(&f));
        assert!(!f.is_subset_of(&e));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = StateSet::empty(100);
        s.insert(State(7));
        s.insert(State(64));
        assert!(s.contains(State(7)));
        assert!(s.contains(State(64)));
        assert!(!s.contains(State(8)));
        assert_eq!(s.len(), 2);
        s.remove(State(7));
        assert!(!s.contains(State(7)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let mut a = StateSet::empty(8);
        a.insert(State(1));
        a.insert(State(2));
        let mut b = StateSet::empty(8);
        b.insert(State(2));
        b.insert(State(3));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(State(2)));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(State(1)));
    }

    #[test]
    fn complement_masks_tail() {
        let mut s = StateSet::empty(10);
        s.insert(State(0));
        let c = s.complement();
        assert_eq!(c.len(), 9);
        assert!(!c.contains(State(0)));
        assert!(c.contains(State(9)));
        // Double complement is identity.
        assert_eq!(c.complement(), s);
        // Exactly-64 universe exercises the no-tail path.
        let f = StateSet::full(64);
        assert!(f.complement().is_empty());
    }

    #[test]
    fn full_fills_words_and_masks_tail() {
        // Cross word boundaries and exact multiples of 64.
        for universe in [0, 1, 63, 64, 65, 128, 130, 1 << 10] {
            let f = StateSet::full(universe);
            assert_eq!(f.len(), universe, "universe {universe}");
            assert_eq!(f, f.complement().complement());
            assert!(f.complement().is_empty());
            if universe > 0 {
                assert!(f.contains_index(universe - 1));
            }
        }
    }

    #[test]
    fn index_operations_match_state_operations() {
        let mut s = StateSet::empty(200);
        s.insert_index(5);
        s.insert_index(77);
        assert!(s.contains(State(5)) && s.contains_index(77));
        assert!(!s.contains_index(6));
        let idx: Vec<usize> = s.iter_indices().collect();
        assert_eq!(idx, vec![5, 77]);
    }

    #[test]
    fn iteration_order_and_coverage() {
        let mut s = StateSet::empty(130);
        for i in [0u128, 63, 64, 65, 129] {
            s.insert(State(i));
        }
        let got: Vec<u128> = s.iter().map(|st| st.0).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 129]);
    }
}
