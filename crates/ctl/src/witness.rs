//! Witness and counterexample paths for the explicit-state checker.
//!
//! For a failed universal property the user needs to see *why*: a concrete
//! execution. This module extracts
//!
//! * witness paths for `EF`/`EU` (a finite path reaching the target),
//! * witness lassos for `EG` (a path into a cycle that stays in the set),
//! * counterexamples for `AG` (an `EF ¬p` witness) and `AF` (an `EG ¬p`
//!   lasso),
//!
//! mirroring what SMV prints under "as demonstrated by the following
//! execution sequence".

use crate::ast::Formula;
use crate::checker::{CheckError, Checker};
use crate::stateset::StateSet;
use cmc_kripke::{State, System};
use std::collections::BTreeMap;
use std::fmt;

/// A finite witness: either a plain path or a lasso (path + cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessPath {
    /// The stem: consecutive states under the transition relation.
    pub stem: Vec<State>,
    /// For lassos, the cycle states (first cycle state repeats after the
    /// last); empty for plain reachability witnesses.
    pub cycle: Vec<State>,
}

impl WitnessPath {
    /// Total number of distinct states listed.
    pub fn len(&self) -> usize {
        self.stem.len() + self.cycle.len()
    }

    /// Is the witness empty (should not happen for successful extraction)?
    pub fn is_empty(&self) -> bool {
        self.stem.is_empty() && self.cycle.is_empty()
    }

    /// Render with an alphabet, SMV-trace style.
    pub fn display<'a>(&'a self, system: &'a System) -> WitnessDisplay<'a> {
        WitnessDisplay {
            witness: self,
            system,
        }
    }

    /// Validate that every consecutive pair is a transition of `system`
    /// and the cycle closes. Used by tests; cheap enough to debug-assert.
    pub fn is_valid(&self, system: &System) -> bool {
        let all: Vec<State> = self.stem.iter().chain(self.cycle.iter()).copied().collect();
        for w in all.windows(2) {
            if !system.has_transition(w[0], w[1]) {
                return false;
            }
        }
        if let (Some(&last), Some(&first)) = (self.cycle.last(), self.cycle.first()) {
            if !system.has_transition(last, first) {
                return false;
            }
        }
        !self.is_empty()
    }

    /// All listed states, stem then cycle, in path order.
    pub fn states(&self) -> impl Iterator<Item = State> + '_ {
        self.stem.iter().chain(self.cycle.iter()).copied()
    }

    /// The path's first state (the one that must satisfy `I`).
    pub fn start(&self) -> Option<State> {
        self.states().next()
    }

    /// Does every listed state satisfy the propositional formula `f`?
    pub fn all_satisfy(&self, system: &System, f: &Formula) -> bool {
        self.states().all(|s| f.eval_in_state(system.alphabet(), s))
    }

    /// Does some *cycle* state satisfy the propositional constraint `c`?
    /// (On a lasso this is exactly "`c` holds infinitely often".) Plain
    /// paths stutter their last state forever, so they are checked there.
    pub fn cycle_satisfies(&self, system: &System, c: &Formula) -> bool {
        let al = system.alphabet();
        if self.cycle.is_empty() {
            self.stem.last().is_some_and(|s| c.eval_in_state(al, *s))
        } else {
            self.cycle.iter().any(|s| c.eval_in_state(al, *s))
        }
    }
}

/// Pretty-printer for witnesses.
pub struct WitnessDisplay<'a> {
    witness: &'a WitnessPath,
    system: &'a System,
}

impl fmt::Display for WitnessDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let al = self.system.alphabet();
        for (i, s) in self.witness.stem.iter().enumerate() {
            writeln!(f, "  state {}: {}", i + 1, s.display(al))?;
        }
        if !self.witness.cycle.is_empty() {
            writeln!(f, "  -- loop starts here --")?;
            for (i, s) in self.witness.cycle.iter().enumerate() {
                writeln!(
                    f,
                    "  state {}: {}",
                    self.witness.stem.len() + i + 1,
                    s.display(al)
                )?;
            }
        }
        Ok(())
    }
}

impl Checker {
    /// Map a path of kernel indices to dense [`State`]s. `None` when the
    /// space is too wide for `State` patterns (reachable mode past 128
    /// propositions) — verdicts still stand, but traces are unavailable.
    fn states_of_indices(&self, idxs: &[usize]) -> Option<Vec<State>> {
        idxs.iter().map(|&i| self.state_at(i)).collect()
    }

    /// Reconstruct root→`last` from a BFS parent map (roots are their own
    /// parent), then append nothing: `last` must already be in the map.
    fn unwind(parent: &BTreeMap<usize, usize>, last: usize) -> Vec<usize> {
        let mut path = vec![last];
        let mut cur = last;
        loop {
            let p = parent[&cur];
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// A shortest path from some state of `from` to some state of `to`
    /// (both may include stutter steps). `None` if unreachable (or the
    /// space is too wide to render states).
    pub fn find_path(&self, from: &StateSet, to: &StateSet) -> Option<WitnessPath> {
        // BFS over proper successors (stutter never helps a shortest path
        // except the trivial one).
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for i in from.iter_indices() {
            if to.contains_index(i) {
                return Some(WitnessPath {
                    stem: self.states_of_indices(&[i])?,
                    cycle: vec![],
                });
            }
            parent.insert(i, i);
            queue.push_back(i);
        }
        while let Some(s) = queue.pop_front() {
            for &t in self.csr().successors(s) {
                let t = t as usize;
                if parent.contains_key(&t) {
                    continue;
                }
                parent.insert(t, s);
                if to.contains_index(t) {
                    return Some(WitnessPath {
                        stem: self.states_of_indices(&Self::unwind(&parent, t))?,
                        cycle: vec![],
                    });
                }
                queue.push_back(t);
            }
        }
        None
    }

    /// Witness for `s₀ ⊨ E[f U g]`: a finite `f`-path from a state in
    /// `from` to a `g`-state.
    pub fn witness_eu(
        &self,
        from: &StateSet,
        f: &Formula,
        g: &Formula,
    ) -> Result<Option<WitnessPath>, CheckError> {
        let sat_f = self.sat(f)?;
        let sat_g = self.sat(g)?;
        // Restrict the search to f-states (targets may leave f).
        let mut sources = from.clone();
        sources.intersect_with(&sat_f);
        // Direct hit?
        let mut direct = from.clone();
        direct.intersect_with(&sat_g);
        if let Some(i) = direct.iter_indices().next() {
            return Ok(Some(WitnessPath {
                stem: match self.states_of_indices(&[i]) {
                    Some(stem) => stem,
                    None => return Ok(None),
                },
                cycle: vec![],
            }));
        }
        // BFS through f-states only.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for i in sources.iter_indices() {
            parent.insert(i, i);
            queue.push_back(i);
        }
        while let Some(s) = queue.pop_front() {
            for &t in self.csr().successors(s) {
                let t = t as usize;
                if parent.contains_key(&t) {
                    continue;
                }
                if sat_g.contains_index(t) {
                    parent.insert(t, s);
                    return Ok(self
                        .states_of_indices(&Self::unwind(&parent, t))
                        .map(|stem| WitnessPath {
                            stem,
                            cycle: vec![],
                        }));
                }
                if sat_f.contains_index(t) {
                    parent.insert(t, s);
                    queue.push_back(t);
                }
            }
        }
        Ok(None)
    }

    /// Witness for `EG f` from `from`: a lasso whose every state satisfies
    /// `f`. Exploits reflexivity: any `f`-state inside `sat(EG f)` can
    /// stutter, so the minimal lasso is a self-loop; we still prefer a
    /// proper cycle when one exists within the EG set.
    pub fn witness_eg(
        &self,
        from: &StateSet,
        f: &Formula,
    ) -> Result<Option<WitnessPath>, CheckError> {
        let eg = self.sat(&f.clone().eg())?;
        let mut sources = from.clone();
        sources.intersect_with(&eg);
        let Some(start) = sources.iter_indices().next() else {
            return Ok(None);
        };
        // Walk within the EG set until a state repeats.
        let mut order: Vec<usize> = vec![start];
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        seen.insert(start, 0);
        let mut cur = start;
        loop {
            // Prefer a proper successor inside EG; fall back to stutter.
            let next = self
                .csr()
                .successors(cur)
                .iter()
                .map(|&t| t as usize)
                .find(|&t| eg.contains_index(t))
                .unwrap_or(cur);
            if let Some(&idx) = seen.get(&next) {
                let stem = match self.states_of_indices(&order[..idx]) {
                    Some(stem) => stem,
                    None => return Ok(None),
                };
                let cycle = match self.states_of_indices(&order[idx..]) {
                    Some(cycle) => cycle,
                    None => return Ok(None),
                };
                return Ok(Some(WitnessPath { stem, cycle }));
            }
            seen.insert(next, order.len());
            order.push(next);
            cur = next;
        }
    }

    /// Witness for fair `EG f` from `from`: a lasso whose every state
    /// satisfies `f` *and* whose cycle visits every fairness constraint.
    ///
    /// Works entirely inside `W = sat_fair(EG f)`: by the Emerson–Lei
    /// fixpoint, every state of `W` reaches (within `W`) a state of
    /// `W ∩ Fᵢ` for each constraint, so chasing the constraints
    /// round-robin must eventually revisit a `(state, phase)` pair — the
    /// segment between the two visits passes every `Fᵢ` and closes a
    /// genuinely fair cycle.
    pub fn witness_eg_fair(
        &self,
        from: &StateSet,
        f: &Formula,
        fairness: &[Formula],
    ) -> Result<Option<WitnessPath>, CheckError> {
        let cons: Vec<&Formula> = fairness.iter().filter(|c| **c != Formula::True).collect();
        if cons.is_empty() {
            return self.witness_eg(from, f);
        }
        let w = self.sat_fair(&f.clone().eg(), fairness)?;
        let mut sources = from.clone();
        sources.intersect_with(&w);
        let Some(start) = sources.iter_indices().next() else {
            return Ok(None);
        };
        // Targets per phase: fair-EG states satisfying the constraint.
        let targets: Vec<StateSet> = cons
            .iter()
            .map(|c| {
                self.sat(c).map(|mut s| {
                    s.intersect_with(&w);
                    s
                })
            })
            .collect::<Result<_, _>>()?;

        let mut order: Vec<usize> = vec![start];
        let mut visited: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut cur = start;
        let mut phase = 0usize;
        loop {
            if let Some(&idx) = visited.get(&(cur, phase)) {
                // order[idx] == cur == order.last(): drop the duplicate
                // tail state so the cycle lists each state once.
                let stem = match self.states_of_indices(&order[..idx]) {
                    Some(stem) => stem,
                    None => return Ok(None),
                };
                let mut cycle = match self.states_of_indices(&order[idx..order.len() - 1]) {
                    Some(cycle) => cycle,
                    None => return Ok(None),
                };
                if cycle.is_empty() {
                    match self.state_at(cur) {
                        Some(s) => cycle.push(s), // pure stutter lasso
                        None => return Ok(None),
                    }
                }
                return Ok(Some(WitnessPath { stem, cycle }));
            }
            visited.insert((cur, phase), order.len() - 1);
            let segment = self
                .path_within(&w, cur, &targets[phase])
                .expect("fair-EG fixpoint guarantees every constraint is reachable in W");
            order.extend_from_slice(&segment[1..]);
            cur = *segment.last().expect("path_within returns non-empty");
            phase = (phase + 1) % cons.len();
        }
    }

    /// A shortest index path from `from` to some state of `targets` moving
    /// only through states of `within` (stutter-free BFS; `from` itself
    /// counts if already a target). `None` if unreachable.
    fn path_within(
        &self,
        within: &StateSet,
        from: usize,
        targets: &StateSet,
    ) -> Option<Vec<usize>> {
        if targets.contains_index(from) {
            return Some(vec![from]);
        }
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        parent.insert(from, from);
        queue.push_back(from);
        while let Some(s) = queue.pop_front() {
            for &t in self.csr().successors(s) {
                let t = t as usize;
                if parent.contains_key(&t) || !within.contains_index(t) {
                    continue;
                }
                parent.insert(t, s);
                if targets.contains_index(t) {
                    return Some(Self::unwind(&parent, t));
                }
                queue.push_back(t);
            }
        }
        None
    }

    /// Counterexample for `AG p` from `from`: a path to a `¬p` state.
    pub fn counterexample_ag(
        &self,
        from: &StateSet,
        p: &Formula,
    ) -> Result<Option<WitnessPath>, CheckError> {
        self.witness_eu(from, &Formula::True, &p.clone().not())
    }

    /// Counterexample for `AF p` from `from`: a lasso avoiding `p` forever.
    pub fn counterexample_af(
        &self,
        from: &StateSet,
        p: &Formula,
    ) -> Result<Option<WitnessPath>, CheckError> {
        self.witness_eg(from, &p.clone().not())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use cmc_kripke::Alphabet;

    fn counter() -> System {
        let mut m = System::new(Alphabet::new(["b0", "b1"]));
        m.add_transition_named(&[], &["b0"]);
        m.add_transition_named(&["b0"], &["b1"]);
        m.add_transition_named(&["b1"], &["b0", "b1"]);
        m.add_transition_named(&["b0", "b1"], &[]);
        m
    }

    fn set_of(checker: &Checker, text: &str) -> StateSet {
        checker.sat(&parse(text).unwrap()).unwrap()
    }

    #[test]
    fn shortest_path_on_cycle() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "!b0 & !b1");
        let to = set_of(&c, "b0 & b1");
        let w = c.find_path(&from, &to).unwrap();
        assert_eq!(w.stem.len(), 4); // 00 01 10 11
        assert!(w.cycle.is_empty());
        assert!(w.is_valid(&m));
    }

    #[test]
    fn trivial_path_when_source_in_target() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let s = set_of(&c, "b0");
        let w = c.find_path(&s, &s).unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn unreachable_returns_none() {
        // One-way: x can only be set.
        let mut m = System::new(Alphabet::new(["x"]));
        m.add_transition_named(&[], &["x"]);
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "x");
        let to = set_of(&c, "!x");
        assert!(c.find_path(&from, &to).is_none());
    }

    #[test]
    fn eu_witness_stays_in_f() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "!b0 & !b1");
        let f = parse("!(b0 & b1)").unwrap();
        let g = parse("b0 & b1").unwrap();
        let w = c.witness_eu(&from, &f, &g).unwrap().unwrap();
        assert!(w.is_valid(&m));
        // All but the last state satisfy f.
        let al = m.alphabet();
        for s in &w.stem[..w.stem.len() - 1] {
            assert!(f.eval_in_state(al, *s));
        }
        assert!(g.eval_in_state(al, *w.stem.last().unwrap()));
    }

    #[test]
    fn eu_witness_none_when_unreachable_through_f() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "!b0 & !b1");
        // Must reach 11 while avoiding b0 — impossible on this counter.
        let f = parse("!b0").unwrap();
        let g = parse("b0 & b1").unwrap();
        assert!(c.witness_eu(&from, &f, &g).unwrap().is_none());
    }

    #[test]
    fn eg_witness_is_a_lasso() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "b0 & !b1");
        let w = c.witness_eg(&from, &parse("b0").unwrap()).unwrap().unwrap();
        assert!(!w.cycle.is_empty());
        assert!(w.is_valid(&m));
        let al = m.alphabet();
        for s in w.stem.iter().chain(&w.cycle) {
            assert!(s.contains_named(al, "b0"));
        }
    }

    #[test]
    fn ag_counterexample_reaches_violation() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "!b0 & !b1");
        let w = c
            .counterexample_ag(&from, &parse("!b1").unwrap())
            .unwrap()
            .unwrap();
        let last = *w.stem.last().unwrap();
        assert!(last.contains_named(m.alphabet(), "b1"));
        assert!(w.is_valid(&m));
    }

    #[test]
    fn af_counterexample_is_avoiding_lasso() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "!b0 & !b1");
        // AF (b0 & b1) fails by stuttering; the lasso must avoid 11.
        let w = c
            .counterexample_af(&from, &parse("b0 & b1").unwrap())
            .unwrap()
            .unwrap();
        assert!(w.is_valid(&m));
        let al = m.alphabet();
        for s in w.stem.iter().chain(&w.cycle) {
            assert!(!(s.contains_named(al, "b0") && s.contains_named(al, "b1")));
        }
    }

    #[test]
    fn fair_eg_witness_hits_every_constraint() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "!b0 & !b1");
        // EG true under fairness {b0, b1}: the lasso's loop must visit a
        // b0-state and a b1-state.
        let fairness = [parse("b0").unwrap(), parse("b1").unwrap()];
        let w = c
            .witness_eg_fair(&from, &Formula::True, &fairness)
            .unwrap()
            .unwrap();
        assert!(w.is_valid(&m));
        for f in &fairness {
            assert!(
                w.cycle_satisfies(&m, f),
                "cycle {:?} misses fairness constraint {f}",
                w.cycle
            );
        }
    }

    #[test]
    fn fair_eg_witness_none_when_fairness_unsatisfiable() {
        // One-way switch: from x, the only run stutters on x forever, so
        // fairness {!x} admits no fair path from x.
        let mut m = System::new(Alphabet::new(["x"]));
        m.add_transition_named(&[], &["x"]);
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "x");
        let fairness = [parse("!x").unwrap()];
        assert!(c
            .witness_eg_fair(&from, &Formula::True, &fairness)
            .unwrap()
            .is_none());
    }

    #[test]
    fn fair_eg_witness_without_constraints_is_plain_eg() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "b0 & !b1");
        let w = c
            .witness_eg_fair(&from, &parse("b0").unwrap(), &[Formula::True])
            .unwrap()
            .unwrap();
        assert!(w.is_valid(&m));
        assert!(w.all_satisfy(&m, &parse("b0").unwrap()));
    }

    #[test]
    fn display_renders_states() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let from = set_of(&c, "!b0 & !b1");
        let to = set_of(&c, "b1");
        let w = c.find_path(&from, &to).unwrap();
        let text = w.display(&m).to_string();
        assert!(text.contains("state 1: {}"));
        assert!(text.contains("{b1}"));
    }
}
