#![warn(missing_docs)]

//! # cmc-ctl — Computation Tree Logic: syntax, parser, fair semantics, and
//! an explicit-state model checker
//!
//! Implements §2 of *An Approach to Compositional Model Checking* (Andrade &
//! Sanders, 2002):
//!
//! * CTL state formulas ([`Formula`]) with the derived operators of §2.1,
//! * a parser for SMV `SPEC`-style concrete syntax ([`parser::parse`]),
//! * restriction indices `r = (I, F)` carrying an initial condition and
//!   fairness constraints ([`Restriction`], §2.2),
//! * an explicit-state fair-CTL checker ([`Checker`]) deciding `M ⊨_r f`
//!   by the labelling algorithm, with Emerson–Lei fair `EG`.
//!
//! The explicit checker is the *reference* engine: small, obviously
//! faithful to the paper's semantics (states are subsets of `Σ`,
//! quantification is over all of `2^Σ`, the relation is reflexive). The
//! BDD-based engine in `cmc-symbolic` is cross-validated against it.
//!
//! ## Example
//!
//! ```
//! use cmc_ctl::{parse, Checker, Restriction};
//! use cmc_kripke::{Alphabet, System};
//!
//! // One-bit system that can only set (never clear) `x`.
//! let mut m = System::new(Alphabet::new(["x"]));
//! m.add_transition_named(&[], &["x"]);
//!
//! let checker = Checker::new(&m).unwrap();
//! let spec = parse("AG (x -> AX x)").unwrap();
//! let verdict = checker.check(&Restriction::trivial(), &spec).unwrap();
//! assert!(verdict.holds);
//! ```

pub mod ast;
pub mod checker;
pub mod csr;
pub mod interner;
pub mod limits;
pub mod parser;
pub mod restriction;
pub mod rewrite;
pub mod simulation;
pub mod stateset;
pub mod statevec;
pub mod witness;

pub use ast::Formula;
pub use checker::{CheckError, Checker, Verdict, MAX_EXPLICIT_PROPS};
pub use csr::CsrIndex;
pub use interner::StateInterner;
pub use limits::ExplicitLimits;
pub use parser::{parse, ParseError};
pub use restriction::Restriction;
pub use rewrite::{formula_size, simplify};
pub use simulation::{simulates_explicit, SimError, MAX_SIM_PAIR_PROPS};
pub use stateset::StateSet;
pub use statevec::StateVec;
pub use witness::WitnessPath;
