//! Arbitrary-width packed state vectors for the reachable-only kernel.
//!
//! The dense kernel identifies a state with its `u128` bit pattern, which
//! caps the union alphabet at 128 propositions and forces every set to
//! span the whole `2^n` universe. [`StateVec`] removes the cap: a state
//! over `n` propositions is an `n`-bit packed vector, stored inline (one
//! `u128` word) while `n ≤ 128` and on the heap (a boxed `u64` slice)
//! beyond — the SmallVec layout, so the common compositional widths pay
//! no allocation at all.
//!
//! Vectors are *canonical*: widths up to 128 are always the inline
//! representation and trailing bits beyond the width are always zero, so
//! the derived `Eq`/`Hash` are structural equality of the valuation —
//! exactly what the hash-cons interner ([`crate::interner::StateInterner`])
//! needs.

use cmc_kripke::State;

/// A packed bit vector of `width` propositions (canonical representation;
/// see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateVec {
    width: u32,
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Widths `0..=128`.
    Inline(u128),
    /// Widths `> 128`: exactly `width.div_ceil(64)` words, tail bits zero.
    Heap(Box<[u64]>),
}

impl StateVec {
    /// The all-false valuation over `width` propositions.
    pub fn zero(width: usize) -> Self {
        let repr = if width <= 128 {
            Repr::Inline(0)
        } else {
            Repr::Heap(vec![0u64; width.div_ceil(64)].into_boxed_slice())
        };
        StateVec {
            width: width as u32,
            repr,
        }
    }

    /// Number of propositions this vector ranges over.
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// Lift a dense [`State`] pattern into a vector of `width ≤ 128` bits.
    pub fn from_state(s: State, width: usize) -> Self {
        assert!(width <= 128, "State patterns carry at most 128 bits");
        debug_assert!(
            width == 128 || s.0 >> width == 0,
            "pattern wider than width"
        );
        StateVec {
            width: width as u32,
            repr: Repr::Inline(s.0),
        }
    }

    /// The dense [`State`] pattern, when the width permits one.
    pub fn to_state(&self) -> Option<State> {
        match &self.repr {
            Repr::Inline(bits) => Some(State(*bits)),
            Repr::Heap(_) => None,
        }
    }

    /// Value of the bit at `pos`.
    #[inline]
    pub fn bit(&self, pos: usize) -> bool {
        debug_assert!(pos < self.width());
        match &self.repr {
            Repr::Inline(bits) => bits >> pos & 1 == 1,
            Repr::Heap(words) => words[pos / 64] >> (pos % 64) & 1 == 1,
        }
    }

    /// Set the bit at `pos`.
    #[inline]
    pub fn set(&mut self, pos: usize, value: bool) {
        debug_assert!(pos < self.width());
        match &mut self.repr {
            Repr::Inline(bits) => {
                if value {
                    *bits |= 1u128 << pos;
                } else {
                    *bits &= !(1u128 << pos);
                }
            }
            Repr::Heap(words) => {
                if value {
                    words[pos / 64] |= 1u64 << (pos % 64);
                } else {
                    words[pos / 64] &= !(1u64 << (pos % 64));
                }
            }
        }
    }

    /// Gather the bits at `positions` (component projection): bit `j` of
    /// the result is the vector's bit at `positions[j]`. At most 128
    /// positions — component alphabets always fit a `u128` even when the
    /// union does not.
    pub fn extract(&self, positions: &[usize]) -> u128 {
        debug_assert!(positions.len() <= 128);
        let mut out = 0u128;
        for (j, &pos) in positions.iter().enumerate() {
            if self.bit(pos) {
                out |= 1u128 << j;
            }
        }
        out
    }

    /// A copy with the bits at `positions` replaced by `pattern` (bit `j`
    /// of `pattern` lands at `positions[j]`) — the frame-preserving
    /// component step of §3.1: everything off `positions` is untouched.
    pub fn splice(&self, positions: &[usize], pattern: u128) -> StateVec {
        let mut out = self.clone();
        for (j, &pos) in positions.iter().enumerate() {
            out.set(pos, pattern >> j & 1 == 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_roundtrip_and_bits() {
        let mut v = StateVec::zero(100);
        assert_eq!(v.width(), 100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        for pos in [0, 63, 64, 99] {
            assert!(v.bit(pos));
        }
        assert!(!v.bit(1) && !v.bit(98));
        v.set(63, false);
        assert!(!v.bit(63));
        let s = v.to_state().unwrap();
        assert_eq!(StateVec::from_state(s, 100), v);
    }

    #[test]
    fn heap_crossover_past_128() {
        let mut v = StateVec::zero(130);
        assert!(v.to_state().is_none(), "width 130 has no dense pattern");
        v.set(129, true);
        v.set(5, true);
        assert!(v.bit(129) && v.bit(5) && !v.bit(128));
        // Equality and hashing are structural on the valuation.
        let mut w = StateVec::zero(130);
        w.set(5, true);
        assert_ne!(v, w);
        w.set(129, true);
        assert_eq!(v, w);
        use std::collections::HashSet;
        let set: HashSet<StateVec> = [v.clone(), w].into_iter().collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn extract_and_splice_are_inverse_on_owned_bits() {
        for width in [20, 130] {
            let mut v = StateVec::zero(width);
            v.set(1, true);
            v.set(width - 1, true);
            let positions = [1usize, 3, width - 1];
            assert_eq!(v.extract(&positions), 0b101);
            let w = v.splice(&positions, 0b010);
            assert_eq!(w.extract(&positions), 0b010);
            assert!(!w.bit(1) && w.bit(3) && !w.bit(width - 1));
            // Bits off the positions are untouched.
            let mut x = v.clone();
            x.set(0, true);
            assert!(x.splice(&positions, 0).bit(0));
        }
    }

    #[test]
    fn exact_128_stays_inline() {
        let mut v = StateVec::zero(128);
        v.set(127, true);
        assert_eq!(v.to_state(), Some(State(1u128 << 127)));
    }
}
