//! A recursive-descent parser for CTL formulas in SMV `SPEC` syntax.
//!
//! Grammar (loosest binding first):
//!
//! ```text
//! iff     := implies ( "<->" implies )*
//! implies := or ( "->" implies )?              (right associative)
//! or      := and ( "|" and )*
//! and     := unary ( "&" unary )*
//! unary   := "!" unary
//!          | ("EX"|"AX"|"EF"|"AF"|"EG"|"AG") unary
//!          | ("E"|"A") "[" iff "U" iff "]"
//!          | "TRUE" | "FALSE" | ident | "(" iff ")"
//! ident   := [A-Za-z_][A-Za-z0-9_.#]*          (dots allow `Server.belief`;
//!                                               `#` allows `cmc-smv` bit
//!                                               names like `belief#0`)
//! ```
//!
//! Identifiers may also be equality atoms like `belief = valid`; the parser
//! folds `lhs = rhs` and `lhs != rhs` into atomic propositions named
//! `lhs=rhs` (negated for `!=`), matching how `cmc-smv` boolean-encodes
//! enumerated variables.

use crate::ast::Formula;
use std::fmt;

/// A parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was noticed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a CTL formula from SMV-style text.
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let f = p.iff()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(f)
}

impl std::str::FromStr for Formula {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse(s)
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    /// Consume `kw` only when followed by a non-identifier character, so
    /// that e.g. `EXtra` lexes as an identifier rather than `EX tra`.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if let Some(rest) = r.strip_prefix(kw) {
            if rest.chars().next().is_none_or(|c| !is_ident_char(c)) {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.implies()?;
        while self.eat("<->") {
            let g = self.implies()?;
            f = f.iff(g);
        }
        Ok(f)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let f = self.or()?;
        if self.eat("->") {
            let g = self.implies()?; // right associative
            Ok(f.implies(g))
        } else {
            Ok(f)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.and()?;
        loop {
            self.skip_ws();
            // `|` but not `|something-weird`; single char is fine.
            if self.rest().starts_with('|') {
                self.pos += 1;
                let g = self.and()?;
                f = f.or(g);
            } else {
                break;
            }
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.unary()?;
        while self.eat("&") {
            let g = self.unary()?;
            f = f.and(g);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        if self.eat("!") {
            return Ok(self.unary()?.not());
        }
        for (kw, make) in [
            ("EX", Formula::ex as fn(Formula) -> Formula),
            ("AX", Formula::ax),
            ("EF", Formula::ef),
            ("AF", Formula::af),
            ("EG", Formula::eg),
            ("AG", Formula::ag),
        ] {
            if self.eat_keyword(kw) {
                return Ok(make(self.unary()?));
            }
        }
        // E [ f U g ] / A [ f U g ]
        for (kw, existential) in [("E", true), ("A", false)] {
            let save = self.pos;
            if self.eat_keyword(kw) {
                self.skip_ws();
                if self.eat("[") {
                    let f = self.iff()?;
                    if !self.eat_keyword("U") {
                        return Err(self.err("expected `U` in until formula"));
                    }
                    let g = self.iff()?;
                    if !self.eat("]") {
                        return Err(self.err("expected `]` closing until formula"));
                    }
                    return Ok(if existential { f.eu(g) } else { f.au(g) });
                }
                self.pos = save; // bare E/A: treat as identifier
            }
        }
        if self.eat("(") {
            let f = self.iff()?;
            if !self.eat(")") {
                return Err(self.err("expected `)`"));
            }
            return Ok(f);
        }
        if self.eat_keyword("TRUE") {
            return Ok(Formula::True);
        }
        if self.eat_keyword("FALSE") {
            return Ok(Formula::False);
        }
        self.atom()
    }

    /// `ident` or `ident (=|!=) ident` equality atom.
    fn atom(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.ident()?;
        self.skip_ws();
        let negated = if self.rest().starts_with("!=") {
            self.pos += 2;
            true
        } else if self.rest().starts_with('=') && !self.rest().starts_with("==") {
            self.pos += 1;
            false
        } else {
            return Ok(Formula::ap(lhs));
        };
        let rhs = self.ident()?;
        let ap = Formula::ap(format!("{lhs}={rhs}"));
        Ok(if negated { ap.not() } else { ap })
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut len = 0usize;
        for (i, c) in self.rest().char_indices() {
            if i == 0 {
                if !(c.is_ascii_alphabetic() || c == '_') {
                    return Err(self.err("expected identifier"));
                }
                len = c.len_utf8();
            } else if is_ident_char(c) {
                len = i + c.len_utf8();
            } else {
                break;
            }
        }
        if len == 0 {
            return Err(self.err("expected identifier"));
        }
        self.pos = start + len;
        Ok(self.input[start..start + len].to_string())
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '#'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Formula {
        let f = parse(text).unwrap_or_else(|e| panic!("{e} in {text:?}"));
        // Printing and reparsing must be stable.
        let printed = f.to_string();
        let again = parse(&printed).unwrap_or_else(|e| panic!("{e} reparsing {printed:?}"));
        assert_eq!(f, again, "print/parse roundtrip failed for {text:?}");
        f
    }

    #[test]
    fn atoms_and_constants() {
        assert_eq!(roundtrip("p"), Formula::ap("p"));
        assert_eq!(roundtrip("TRUE"), Formula::True);
        assert_eq!(roundtrip("FALSE"), Formula::False);
        assert_eq!(roundtrip("Server.belief"), Formula::ap("Server.belief"));
    }

    #[test]
    fn equality_atoms_fold_to_aps() {
        assert_eq!(roundtrip("belief = valid"), Formula::ap("belief=valid"));
        assert_eq!(parse("r != val").unwrap(), Formula::ap("r=val").not());
    }

    #[test]
    fn precedence_and_associativity() {
        assert_eq!(
            roundtrip("a & b | c"),
            Formula::ap("a").and(Formula::ap("b")).or(Formula::ap("c"))
        );
        assert_eq!(
            roundtrip("a -> b -> c"),
            Formula::ap("a").implies(Formula::ap("b").implies(Formula::ap("c")))
        );
        assert_eq!(
            roundtrip("!a & b"),
            Formula::ap("a").not().and(Formula::ap("b"))
        );
        assert_eq!(
            roundtrip("a <-> b & c"),
            Formula::ap("a").iff(Formula::ap("b").and(Formula::ap("c")))
        );
    }

    #[test]
    fn temporal_operators() {
        assert_eq!(roundtrip("AG p"), Formula::ap("p").ag());
        assert_eq!(roundtrip("EX AX p"), Formula::ap("p").ax().ex());
        assert_eq!(
            roundtrip("AG (p -> AX q)"),
            Formula::ap("p").implies(Formula::ap("q").ax()).ag()
        );
        assert_eq!(
            roundtrip("E [p U q]"),
            Formula::ap("p").eu(Formula::ap("q"))
        );
        assert_eq!(
            roundtrip("A [p & r U q]"),
            Formula::ap("p").and(Formula::ap("r")).au(Formula::ap("q"))
        );
    }

    #[test]
    fn keyword_boundary() {
        // EXtra is an identifier, not EX tra.
        assert_eq!(roundtrip("EXtra"), Formula::ap("EXtra"));
        assert_eq!(roundtrip("AGent"), Formula::ap("AGent"));
        // Bare E and A are identifiers when not followed by '['.
        assert_eq!(roundtrip("E & A"), Formula::ap("E").and(Formula::ap("A")));
    }

    #[test]
    fn bit_atoms_roundtrip() {
        // `cmc-smv` boolean-encodes enum variables as `name#j` bits;
        // stored certificates render and re-parse formulas over them.
        assert_eq!(
            roundtrip("!sbelief#0 & sbelief#1"),
            Formula::ap("sbelief#0").not().and(Formula::ap("sbelief#1"))
        );
        assert_eq!(
            roundtrip("AG (r#2 -> AX r#2)").to_string(),
            "AG (r#2 -> AX r#2)"
        );
    }

    #[test]
    fn paper_specs_parse() {
        // Specs from Figures 6 and 9 of the paper.
        for spec in [
            "(belief = valid) -> AX (belief = valid)",
            "(r = val -> belief = valid) -> AX (r = val -> belief = valid)",
            "(r = fetch -> AX (r = fetch | r = val)) & (r = validate & belief = none) -> \
             AX ((belief = none & r = validate) | (belief = valid & r = val) | \
             (belief = invalid & r = inval))",
            "(belief != valid & r != val) -> AX (belief != valid & r != val)",
            "(belief = suspect & r = null) -> EX (belief = suspect & r = validate)",
            "AG ((Client.belief = valid) -> (Server.belief = valid | !time1))",
        ] {
            roundtrip(spec);
        }
    }

    #[test]
    fn errors_carry_position() {
        let e = parse("p &").unwrap_err();
        assert!(e.offset >= 3);
        assert!(parse("(p").is_err());
        assert!(parse("E [p q]").is_err());
        assert!(parse("p q").unwrap_err().message.contains("trailing"));
        assert!(parse("").is_err());
    }
}
