//! Hash-cons interner mapping discovered states to dense `u32` ids.
//!
//! The reachable-only kernel never enumerates the `2^n` universe: states
//! are discovered by BFS from the initial set, and every kernel below the
//! construction layer (StateSet words, CSR blocks, frontier fixpoints,
//! block-parallel OR-merge) indexes by the dense id handed out here. Ids
//! are assigned in discovery order, so id `0..len` is exactly the
//! reachable fragment and `len` is the checker's universe.

use std::collections::HashMap;

use crate::statevec::StateVec;

/// Maps each distinct [`StateVec`] to a dense `u32` id (hash-consing).
#[derive(Debug, Default)]
pub struct StateInterner {
    ids: HashMap<StateVec, u32>,
    states: Vec<StateVec>,
}

impl StateInterner {
    /// An empty interner.
    pub fn new() -> Self {
        StateInterner::default()
    }

    /// Number of distinct states interned so far.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Has nothing been interned yet?
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Intern `sv`, returning `(id, freshly_inserted)`.
    pub fn intern(&mut self, sv: StateVec) -> (u32, bool) {
        if let Some(&id) = self.ids.get(&sv) {
            return (id, false);
        }
        let id = u32::try_from(self.states.len()).expect("state ids exhausted u32 range");
        self.ids.insert(sv.clone(), id);
        self.states.push(sv);
        (id, true)
    }

    /// The state with dense id `id` (panics if out of range).
    pub fn get(&self, id: usize) -> &StateVec {
        &self.states[id]
    }

    /// The dense id of `sv`, if it has been discovered.
    pub fn lookup(&self, sv: &StateVec) -> Option<u32> {
        self.ids.get(sv).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner = StateInterner::new();
        let mut a = StateVec::zero(140);
        a.set(139, true);
        let b = StateVec::zero(140);
        let (ia, fresh_a) = interner.intern(a.clone());
        let (ib, fresh_b) = interner.intern(b.clone());
        let (ia2, fresh_a2) = interner.intern(a.clone());
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!((ia, ib, ia2), (0, 1, 0));
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get(0), &a);
        assert_eq!(interner.lookup(&b), Some(1));
        assert_eq!(interner.lookup(&StateVec::zero(141)), None);
    }
}
