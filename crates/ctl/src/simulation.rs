//! Explicit-state simulation checking over the CSR kernel.
//!
//! Decides `concrete ⊑ abstraction` (the greatest shared-observable
//! simulation of `cmc_kripke::simulation`) with the same machinery the
//! frontier CTL kernel uses: concrete proper transitions come from a
//! one-time [`CsrIndex`], the pair relation lives in one flat bitset over
//! the `2^|Σ_C| × 2^|Σ_A|` pair universe, and refinement runs as a
//! backwards worklist — when a pair is struck, only the pairs that could
//! have depended on it are re-examined, so the fixpoint never rescans the
//! whole relation per iteration.

use crate::csr::CsrIndex;
use cmc_kripke::simulation::{SharedObs, SimulationCx, SimulationOutcome};
use cmc_kripke::{State, System};
use std::fmt;

/// Widest combined `|Σ_C| + |Σ_A|` the explicit simulation checker
/// accepts (the pair universe is `2^(|Σ_C|+|Σ_A|)` bits).
pub const MAX_SIM_PAIR_PROPS: usize = crate::checker::MAX_EXPLICIT_PROPS;

/// Errors from the explicit simulation checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pair universe exceeds the explicit limit.
    TooLarge {
        /// `|Σ_C| + |Σ_A|`.
        props: usize,
        /// The checker's limit.
        limit: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooLarge { props, limit } => write!(
                f,
                "combined simulation alphabet of {props} propositions exceeds \
                 the explicit limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// One word-packed bitset over the pair universe.
struct PairSet {
    words: Vec<u64>,
}

impl PairSet {
    fn new(len: usize) -> Self {
        PairSet {
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        self.words[i >> 6] >> (i & 63) & 1 == 1
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn remove(&mut self, i: usize) {
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

/// Decide `concrete ⊑ abstraction` explicitly. Returns the same
/// [`SimulationOutcome`] the definitional checker produces (verdict,
/// greatest-relation size, counterexample with the offending move).
pub fn simulates_explicit(
    concrete: &System,
    abstraction: &System,
) -> Result<SimulationOutcome, SimError> {
    let nc_bits = concrete.alphabet().len();
    let na_bits = abstraction.alphabet().len();
    let props = nc_bits + na_bits;
    if props > MAX_SIM_PAIR_PROPS {
        return Err(SimError::TooLarge {
            props,
            limit: MAX_SIM_PAIR_PROPS,
        });
    }
    let nc = 1usize << nc_bits;
    let na = 1usize << na_bits;
    let obs = SharedObs::new(concrete.alphabet(), abstraction.alphabet());
    let csr = CsrIndex::from_system(concrete);
    let acsr = CsrIndex::from_system(abstraction);

    // Pair index: p = s * na + a. H₀ = label agreement; bucket the
    // abstract states by observation so initialisation is O(nc + na + |H₀|).
    let mut abs_by_obs: std::collections::HashMap<u128, Vec<u32>> =
        std::collections::HashMap::new();
    for a in 0..na {
        abs_by_obs
            .entry(obs.observe_abstract(State(a as u128)))
            .or_default()
            .push(a as u32);
    }
    let mut rel = PairSet::new(nc * na);
    for s in 0..nc {
        if let Some(partners) = abs_by_obs.get(&obs.observe_concrete(State(s as u128))) {
            for &a in partners {
                rel.insert(s * na + a as usize);
            }
        }
    }

    // A pair (s, a) survives iff every proper concrete move s → t has an
    // abstract R*-move a → b (stutter included) with (t, b) ∈ H.
    let check_pair = |rel: &PairSet, s: usize, a: usize| -> Option<u32> {
        'moves: for &t in csr.successors(s) {
            let t = t as usize;
            if rel.contains(t * na + a) {
                continue; // abstract stutter matches
            }
            for &b in acsr.successors(a) {
                if rel.contains(t * na + b as usize) {
                    continue 'moves;
                }
            }
            return Some(t as u32);
        }
        None
    };

    // Initial sweep, then a backwards worklist: striking (t, b) can only
    // invalidate pairs (s, a) with s a proper predecessor of t and b
    // reachable from a in one abstract R*-step (a = b for the stutter).
    let mut queued = PairSet::new(nc * na);
    let mut work: Vec<u32> = Vec::new();
    let mut blame: Vec<Option<(State, State)>> = vec![None; nc];
    let strike = |rel: &mut PairSet,
                  queued: &mut PairSet,
                  work: &mut Vec<u32>,
                  blame: &mut Vec<Option<(State, State)>>,
                  s: usize,
                  a: usize,
                  t: u32| {
        rel.remove(s * na + a);
        blame[s] = Some((State(s as u128), State(t as u128)));
        for &ps in csr.predecessors(s) {
            let base = ps as usize * na;
            if rel.contains(base + a) && !queued.contains(base + a) {
                queued.insert(base + a);
                work.push((base + a) as u32);
            }
            for &pa in acsr.predecessors(a) {
                let p = base + pa as usize;
                if rel.contains(p) && !queued.contains(p) {
                    queued.insert(p);
                    work.push(p as u32);
                }
            }
        }
    };
    for s in 0..nc {
        for a in 0..na {
            if rel.contains(s * na + a) {
                if let Some(t) = check_pair(&rel, s, a) {
                    strike(&mut rel, &mut queued, &mut work, &mut blame, s, a, t);
                }
            }
        }
    }
    while let Some(p) = work.pop() {
        let p = p as usize;
        queued.remove(p);
        if !rel.contains(p) {
            continue;
        }
        let (s, a) = (p / na, p % na);
        if let Some(t) = check_pair(&rel, s, a) {
            strike(&mut rel, &mut queued, &mut work, &mut blame, s, a, t);
        }
    }

    for (s, &blamed) in blame.iter().enumerate().take(nc) {
        let related = (0..na).any(|a| rel.contains(s * na + a));
        if !related {
            return Ok(SimulationOutcome::Fails(SimulationCx {
                state: State(s as u128),
                transition: blamed,
            }));
        }
    }
    Ok(SimulationOutcome::Holds { pairs: rel.count() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_kripke::simulation::simulates;
    use cmc_kripke::Alphabet;

    fn toggler(name: &str) -> System {
        let mut m = System::new(Alphabet::new([name]));
        m.add_transition_named(&[], &[name]);
        m.add_transition_named(&[name], &[]);
        m
    }

    #[test]
    fn agrees_with_the_definitional_checker_on_small_cases() {
        let c = toggler("x");
        let mut a = System::new(Alphabet::new(["x"]));
        a.add_transition_named(&[], &["x"]);
        assert_eq!(simulates_explicit(&c, &a).unwrap(), simulates(&c, &a));
        assert_eq!(simulates_explicit(&c, &c).unwrap(), simulates(&c, &c));
        let b = System::new(Alphabet::new(["y"]));
        assert_eq!(simulates_explicit(&c, &b).unwrap(), simulates(&c, &b));
    }

    #[test]
    fn projection_of_a_wider_system_is_simulated() {
        let mut m = System::new(Alphabet::new(["t", "s0", "s1"]));
        m.add_transition_named(&[], &["s0"]);
        m.add_transition_named(&["s0"], &["s0", "s1"]);
        m.add_transition_named(&["s0", "s1"], &["t"]);
        m.add_transition_named(&["t"], &[]);
        let a = m.project(&Alphabet::new(["t"]));
        assert!(simulates_explicit(&m, &a).unwrap().holds());
    }

    #[test]
    fn too_wide_is_rejected() {
        let names: Vec<String> = (0..20).map(|i| format!("p{i}")).collect();
        let big = System::new(Alphabet::new(names.clone()));
        let err = simulates_explicit(&big, &big).unwrap_err();
        assert_eq!(
            err,
            SimError::TooLarge {
                props: 40,
                limit: MAX_SIM_PAIR_PROPS
            }
        );
    }
}
