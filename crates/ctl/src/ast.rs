//! Computation Tree Logic abstract syntax (§2.1 of the paper).
//!
//! CTL is generated from atomic propositions by the boolean connectives and
//! the paired path quantifier/temporal operators `AX, EX, AF, EF, AG, EG,
//! AU, EU`. Following the paper, `AF/EF/AG/EG` are viewed as derived from
//! `U` — the checkers normalise to the existential core `{¬, ∧, EX, EU, EG}`.

use cmc_kripke::{Alphabet, State};
use std::collections::BTreeSet;
use std::fmt;

/// A CTL state formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// Atomic proposition `p ∈ Σ`.
    Ap(String),
    /// Negation `¬f`.
    Not(Box<Formula>),
    /// Conjunction `f ∧ g`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `f ∨ g`.
    Or(Box<Formula>, Box<Formula>),
    /// Implication `f ⇒ g`.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional `f ⇔ g`.
    Iff(Box<Formula>, Box<Formula>),
    /// `EX f` — some successor satisfies `f`.
    Ex(Box<Formula>),
    /// `AX f` — every successor satisfies `f`.
    Ax(Box<Formula>),
    /// `EF f` = `E[true U f]`.
    Ef(Box<Formula>),
    /// `AF f` = `A[true U f]`.
    Af(Box<Formula>),
    /// `EG f` — some path along which `f` always holds.
    Eg(Box<Formula>),
    /// `AG f` — `f` holds along every path.
    Ag(Box<Formula>),
    /// `E[f U g]`.
    Eu(Box<Formula>, Box<Formula>),
    /// `A[f U g]`.
    Au(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Atomic proposition by name.
    pub fn ap(name: impl Into<String>) -> Formula {
        Formula::Ap(name.into())
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)] // DSL builder, mirrors ∧/∨ methods
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ∧ rhs`.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(rhs))
    }

    /// `self ∨ rhs`.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(rhs))
    }

    /// `self ⇒ rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(rhs))
    }

    /// `self ⇔ rhs`.
    pub fn iff(self, rhs: Formula) -> Formula {
        Formula::Iff(Box::new(self), Box::new(rhs))
    }

    /// `EX self`.
    pub fn ex(self) -> Formula {
        Formula::Ex(Box::new(self))
    }

    /// `AX self`.
    pub fn ax(self) -> Formula {
        Formula::Ax(Box::new(self))
    }

    /// `EF self`.
    pub fn ef(self) -> Formula {
        Formula::Ef(Box::new(self))
    }

    /// `AF self`.
    pub fn af(self) -> Formula {
        Formula::Af(Box::new(self))
    }

    /// `EG self`.
    pub fn eg(self) -> Formula {
        Formula::Eg(Box::new(self))
    }

    /// `AG self`.
    pub fn ag(self) -> Formula {
        Formula::Ag(Box::new(self))
    }

    /// `E[self U rhs]`.
    pub fn eu(self, rhs: Formula) -> Formula {
        Formula::Eu(Box::new(self), Box::new(rhs))
    }

    /// `A[self U rhs]`.
    pub fn au(self, rhs: Formula) -> Formula {
        Formula::Au(Box::new(self), Box::new(rhs))
    }

    /// Conjunction of many formulas (TRUE when empty).
    pub fn and_many(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::True,
            Some(first) => it.fold(first, |acc, f| acc.and(f)),
        }
    }

    /// Disjunction of many formulas (FALSE when empty).
    pub fn or_many(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::False,
            Some(first) => it.fold(first, |acc, f| acc.or(f)),
        }
    }

    /// Is this a *propositional* formula (no temporal operator)? The
    /// compositional rules of §3.3 require propositional `p`, `q`.
    pub fn is_propositional(&self) -> bool {
        use Formula::*;
        match self {
            True | False | Ap(_) => true,
            Not(f) => f.is_propositional(),
            And(f, g) | Or(f, g) | Implies(f, g) | Iff(f, g) => {
                f.is_propositional() && g.is_propositional()
            }
            Ex(_) | Ax(_) | Ef(_) | Af(_) | Eg(_) | Ag(_) | Eu(..) | Au(..) => false,
        }
    }

    /// The atomic propositions mentioned — the `Σ` of "`f ∈ C(Σ)`" (§2.1).
    pub fn atomic_props(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_props(&mut out);
        out
    }

    fn collect_props(&self, out: &mut BTreeSet<String>) {
        use Formula::*;
        match self {
            True | False => {}
            Ap(p) => {
                out.insert(p.clone());
            }
            Not(f) | Ex(f) | Ax(f) | Ef(f) | Af(f) | Eg(f) | Ag(f) => f.collect_props(out),
            And(f, g) | Or(f, g) | Implies(f, g) | Iff(f, g) | Eu(f, g) | Au(f, g) => {
                f.collect_props(out);
                g.collect_props(out);
            }
        }
    }

    /// Is `f ∈ C(Σ)` — does it mention only propositions of `alphabet`?
    pub fn mentions_only(&self, alphabet: &Alphabet) -> bool {
        self.atomic_props().iter().all(|p| alphabet.contains(p))
    }

    /// Evaluate a propositional formula in a single state.
    /// Panics if the formula contains a temporal operator.
    pub fn eval_in_state(&self, alphabet: &Alphabet, s: State) -> bool {
        use Formula::*;
        match self {
            True => true,
            False => false,
            Ap(p) => s.contains_named(alphabet, p),
            Not(f) => !f.eval_in_state(alphabet, s),
            And(f, g) => f.eval_in_state(alphabet, s) && g.eval_in_state(alphabet, s),
            Or(f, g) => f.eval_in_state(alphabet, s) || g.eval_in_state(alphabet, s),
            Implies(f, g) => !f.eval_in_state(alphabet, s) || g.eval_in_state(alphabet, s),
            Iff(f, g) => f.eval_in_state(alphabet, s) == g.eval_in_state(alphabet, s),
            _ => panic!("eval_in_state on temporal formula {self}"),
        }
    }

    /// Evaluate a propositional formula against an arbitrary valuation:
    /// `bit(pos)` supplies the truth value of the proposition at alphabet
    /// position `pos`. This is `eval_in_state` generalised past the 128-bit
    /// `State` pattern — the reachable kernel uses it to evaluate against
    /// interned `StateVec`s of any width. Propositions missing from the
    /// alphabet evaluate to false (callers validate names up front).
    /// Panics if the formula contains a temporal operator.
    pub fn eval_bits<F: Fn(usize) -> bool>(&self, alphabet: &Alphabet, bit: &F) -> bool {
        use Formula::*;
        match self {
            True => true,
            False => false,
            Ap(p) => alphabet.position(p).map(bit).unwrap_or(false),
            Not(f) => !f.eval_bits(alphabet, bit),
            And(f, g) => f.eval_bits(alphabet, bit) && g.eval_bits(alphabet, bit),
            Or(f, g) => f.eval_bits(alphabet, bit) || g.eval_bits(alphabet, bit),
            Implies(f, g) => !f.eval_bits(alphabet, bit) || g.eval_bits(alphabet, bit),
            Iff(f, g) => f.eval_bits(alphabet, bit) == g.eval_bits(alphabet, bit),
            _ => panic!("eval_bits on temporal formula {self}"),
        }
    }

    /// Substitute a truth value for the proposition `name` and constant-fold
    /// the boolean connectives. On propositional formulas repeated `assign`
    /// over every mentioned proposition reduces to `True`/`False`; partial
    /// assignments shrink the formula, which is what lets SAT enumeration
    /// of initial-state predicates prune dead branches instead of walking
    /// all `2^n` assignments. Temporal subformulas are left untouched.
    pub fn assign(&self, name: &str, value: bool) -> Formula {
        use Formula::*;
        match self {
            Ap(p) if p == name => {
                if value {
                    True
                } else {
                    False
                }
            }
            True | False | Ap(_) => self.clone(),
            Not(f) => match f.assign(name, value) {
                True => False,
                False => True,
                g => g.not(),
            },
            And(f, g) => match (f.assign(name, value), g.assign(name, value)) {
                (False, _) | (_, False) => False,
                (True, h) | (h, True) => h,
                (h, k) => h.and(k),
            },
            Or(f, g) => match (f.assign(name, value), g.assign(name, value)) {
                (True, _) | (_, True) => True,
                (False, h) | (h, False) => h,
                (h, k) => h.or(k),
            },
            Implies(f, g) => match (f.assign(name, value), g.assign(name, value)) {
                (False, _) | (_, True) => True,
                (True, h) => h,
                (h, False) => match h {
                    True => False,
                    k => k.not(),
                },
                (h, k) => h.implies(k),
            },
            Iff(f, g) => match (f.assign(name, value), g.assign(name, value)) {
                (True, h) | (h, True) => h,
                (False, h) | (h, False) => match h {
                    True => False,
                    False => True,
                    k => k.not(),
                },
                (h, k) => h.iff(k),
            },
            // Temporal operators: substitution under path quantifiers is not
            // needed by any caller; keep them intact.
            _ => self.clone(),
        }
    }

    /// Rewrite into the existential core `{True, Ap, ¬, ∧, EX, EU, EG}`
    /// using the derivation rules of §2.1:
    ///
    /// ```text
    /// AXf  = ¬EX¬f          AFg = A(true U g) = ¬EG¬g
    /// EFg  = E(true U g)    AGf = ¬EF¬f
    /// A(fUg) = ¬(E(¬g U ¬f∧¬g) ∨ EG¬g)
    /// ```
    pub fn to_existential_normal_form(&self) -> Formula {
        use Formula::*;
        match self {
            True => True,
            False => True.not(),
            Ap(p) => Ap(p.clone()),
            Not(f) => f.to_existential_normal_form().not(),
            And(f, g) => f
                .to_existential_normal_form()
                .and(g.to_existential_normal_form()),
            Or(f, g) => {
                // f ∨ g = ¬(¬f ∧ ¬g)
                let nf = f.to_existential_normal_form().not();
                let ng = g.to_existential_normal_form().not();
                nf.and(ng).not()
            }
            Implies(f, g) => {
                // f ⇒ g = ¬(f ∧ ¬g)
                let ef = f.to_existential_normal_form();
                let ng = g.to_existential_normal_form().not();
                ef.and(ng).not()
            }
            Iff(f, g) => {
                // (f ⇒ g) ∧ (g ⇒ f)
                let fg = Formula::Implies(f.clone(), g.clone()).to_existential_normal_form();
                let gf = Formula::Implies(g.clone(), f.clone()).to_existential_normal_form();
                fg.and(gf)
            }
            Ex(f) => f.to_existential_normal_form().ex(),
            Ax(f) => f.to_existential_normal_form().not().ex().not(),
            Ef(f) => True.eu(f.to_existential_normal_form()),
            Af(f) => f.to_existential_normal_form().not().eg().not(),
            Eg(f) => f.to_existential_normal_form().eg(),
            Ag(f) => True.eu(f.to_existential_normal_form().not()).not(),
            Eu(f, g) => f
                .to_existential_normal_form()
                .eu(g.to_existential_normal_form()),
            Au(f, g) => {
                // A(f U g) = ¬(E[¬g U (¬f ∧ ¬g)] ∨ EG ¬g)
                let nf = f.to_existential_normal_form().not();
                let ng = g.to_existential_normal_form().not();
                let left = ng.clone().eu(nf.and(ng.clone()));
                let right = ng.eg();
                left.not().and(right.not())
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl Formula {
    /// Pretty-print with minimal parentheses. Precedence levels: `<->` (1),
    /// `->` (2, right-assoc), `|` (3), `&` (4), unary (5).
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
        use Formula::*;
        let my_prec = match self {
            Iff(..) => 1,
            Implies(..) => 2,
            Or(..) => 3,
            And(..) => 4,
            _ => 5,
        };
        let parens = my_prec < prec;
        if parens {
            write!(f, "(")?;
        }
        match self {
            True => write!(f, "TRUE")?,
            False => write!(f, "FALSE")?,
            Ap(p) => write!(f, "{p}")?,
            Not(x) => {
                write!(f, "!")?;
                x.fmt_prec(f, 5)?;
            }
            And(a, b) => {
                a.fmt_prec(f, 4)?;
                write!(f, " & ")?;
                b.fmt_prec(f, 5)?;
            }
            Or(a, b) => {
                a.fmt_prec(f, 3)?;
                write!(f, " | ")?;
                b.fmt_prec(f, 4)?;
            }
            Implies(a, b) => {
                a.fmt_prec(f, 3)?;
                write!(f, " -> ")?;
                b.fmt_prec(f, 2)?;
            }
            Iff(a, b) => {
                a.fmt_prec(f, 2)?;
                write!(f, " <-> ")?;
                b.fmt_prec(f, 2)?;
            }
            Ex(x) => {
                write!(f, "EX ")?;
                x.fmt_prec(f, 5)?;
            }
            Ax(x) => {
                write!(f, "AX ")?;
                x.fmt_prec(f, 5)?;
            }
            Ef(x) => {
                write!(f, "EF ")?;
                x.fmt_prec(f, 5)?;
            }
            Af(x) => {
                write!(f, "AF ")?;
                x.fmt_prec(f, 5)?;
            }
            Eg(x) => {
                write!(f, "EG ")?;
                x.fmt_prec(f, 5)?;
            }
            Ag(x) => {
                write!(f, "AG ")?;
                x.fmt_prec(f, 5)?;
            }
            Eu(a, b) => {
                write!(f, "E [")?;
                a.fmt_prec(f, 0)?;
                write!(f, " U ")?;
                b.fmt_prec(f, 0)?;
                write!(f, "]")?;
            }
            Au(a, b) => {
                write!(f, "A [")?;
                a.fmt_prec(f, 0)?;
                write!(f, " U ")?;
                b.fmt_prec(f, 0)?;
                write!(f, "]")?;
            }
        }
        if parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let f = Formula::ap("p").implies(Formula::ap("q").ax());
        assert_eq!(f.to_string(), "p -> AX q");
    }

    #[test]
    fn propositional_classification() {
        assert!(Formula::ap("p")
            .and(Formula::ap("q").not())
            .is_propositional());
        assert!(Formula::True.is_propositional());
        assert!(!Formula::ap("p").ax().is_propositional());
        assert!(!Formula::ap("p")
            .implies(Formula::ap("q").ef())
            .is_propositional());
    }

    #[test]
    fn atomic_props_collected() {
        let f = Formula::ap("a").eu(Formula::ap("b").and(Formula::ap("a")));
        let props = f.atomic_props();
        assert_eq!(props.len(), 2);
        assert!(props.contains("a") && props.contains("b"));
    }

    #[test]
    fn mentions_only_checks_alphabet() {
        let al = Alphabet::new(["a", "b"]);
        assert!(Formula::ap("a").mentions_only(&al));
        assert!(!Formula::ap("z").mentions_only(&al));
    }

    #[test]
    fn eval_propositional() {
        let al = Alphabet::new(["p", "q"]);
        let s = State::from_names(&al, &["p"]);
        let f = Formula::ap("p").and(Formula::ap("q").not());
        assert!(f.eval_in_state(&al, s));
        let g = Formula::ap("p").implies(Formula::ap("q"));
        assert!(!g.eval_in_state(&al, s));
        assert!(Formula::ap("p")
            .iff(Formula::ap("q"))
            .eval_in_state(&al, State::EMPTY));
    }

    #[test]
    #[should_panic(expected = "temporal")]
    fn eval_rejects_temporal() {
        let al = Alphabet::new(["p"]);
        Formula::ap("p").ef().eval_in_state(&al, State::EMPTY);
    }

    #[test]
    fn enf_uses_only_core_operators() {
        fn core_only(f: &Formula) -> bool {
            use Formula::*;
            match f {
                True | Ap(_) => true,
                Not(x) | Ex(x) | Eg(x) => core_only(x),
                And(a, b) | Eu(a, b) => core_only(a) && core_only(b),
                _ => false,
            }
        }
        let formulas = [
            Formula::ap("p").ag(),
            Formula::ap("p").af(),
            Formula::ap("p").au(Formula::ap("q")),
            Formula::ap("p").iff(Formula::ap("q")).ef(),
            Formula::ap("p").or(Formula::ap("q")).ax(),
            Formula::False,
        ];
        for f in formulas {
            assert!(core_only(&f.to_existential_normal_form()), "not core: {f}");
        }
    }

    #[test]
    fn display_parenthesisation() {
        let f = Formula::ap("a").or(Formula::ap("b")).and(Formula::ap("c"));
        assert_eq!(f.to_string(), "(a | b) & c");
        let g = Formula::ap("a").and(Formula::ap("b")).or(Formula::ap("c"));
        assert_eq!(g.to_string(), "a & b | c");
        let h = Formula::ap("p").eu(Formula::ap("q"));
        assert_eq!(h.to_string(), "E [p U q]");
        let i = Formula::ap("p").implies(Formula::ap("q")).ag();
        assert_eq!(i.to_string(), "AG (p -> q)");
    }

    #[test]
    fn nary_builders() {
        assert_eq!(Formula::and_many([]), Formula::True);
        assert_eq!(Formula::or_many([]), Formula::False);
        let f = Formula::and_many([Formula::ap("a"), Formula::ap("b"), Formula::ap("c")]);
        assert_eq!(f.to_string(), "a & b & c");
    }
}
