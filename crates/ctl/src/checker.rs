//! Explicit-state fair-CTL model checker.
//!
//! Implements the classic labelling algorithm of Clarke–Emerson–Sistla over
//! the paper's systems (`cmc_kripke::System`), extended with the fairness
//! semantics of §2.2: path quantifiers range over *fair* paths only, where a
//! path is fair iff every constraint in `F` holds infinitely often along it.
//! Fair `EG` uses the Emerson–Lei fixpoint
//! `EG_fair S = νZ. S ∧ ⋀_i EX (E[S U (Z ∧ Fᵢ)])`.
//!
//! In **dense** mode the checker quantifies satisfaction over **all** states
//! of `2^Σ`, exactly as the paper defines `M ⊨ f` (`∀s ∈ 2^Σ : s ⊨ f`) and
//! `M ⊨_r f` (`∀s : s ⊨ I ⇒ s ⊨ f`). Past [`ExplicitLimits::dense_bits`]
//! the **reachable** mode takes over: states are arbitrary-width
//! [`StateVec`]s hash-consed to dense `u32` ids
//! ([`crate::interner::StateInterner`]), and the CSR index is built on the
//! fly from the initial states outward — the `2^n` universe is never
//! enumerated. Because the reachable fragment is successor-closed and
//! contains every state satisfying `I`, `M ⊨_r f` verdicts agree exactly
//! with dense mode; only whole-universe satisfaction *counts* (and
//! `M ⊨ f`, which quantifies over unreachable states too) are not available
//! there.
//!
//! ## The frontier kernel
//!
//! Construction builds one-time CSR predecessor/successor indices
//! ([`crate::csr::CsrIndex`]) over the `2^n` state space; the fixpoints are
//! then *frontier-driven*: `E[S₁ U S₂]` is a single backwards worklist pass
//! that only ever examines the predecessors of states newly added to the
//! result, and the Emerson–Lei rounds of fair `EG` reuse each constraint's
//! reach set while its target `Z ∧ Fᵢ` is unchanged. Total cost is
//! `O(|R| + 2^n)` per least fixpoint instead of the seed checker's
//! `O(iterations × |R|)` edge-list rescans.
//!
//! [`Checker::from_components`] builds the kernel straight from component
//! systems (padding frames into the CSR index), so the explicit backend
//! never materialises the interleaving product.

use crate::ast::Formula;
use crate::csr::CsrIndex;
use crate::interner::StateInterner;
use crate::limits::ExplicitLimits;
use crate::restriction::Restriction;
use crate::stateset::StateSet;
use crate::statevec::StateVec;
use cmc_kripke::{Alphabet, State, System};
use std::collections::HashMap;
use std::fmt;

/// Errors from the explicit checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Formula mentions a proposition outside the system's alphabet. The
    /// paper's `C(Σ)` notation makes this a specification error, not
    /// falsehood.
    UnknownProposition(String),
    /// State space too large for explicit enumeration (use `cmc-symbolic`).
    TooLarge {
        /// Alphabet size of the offending system.
        props: usize,
        /// The limit the checker was configured with.
        limit: usize,
    },
    /// Reachable construction hit the opt-in state budget
    /// ([`ExplicitLimits::max_states`]) before discovery converged.
    StateBudget {
        /// States materialised before refusing.
        explored: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The restriction's initial-state predicate cannot seed reachable
    /// construction (it contains a temporal operator, so SAT enumeration
    /// is not defined on it).
    InitNotEnumerable(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownProposition(p) => {
                write!(
                    f,
                    "formula mentions proposition {p:?} outside the system alphabet"
                )
            }
            CheckError::TooLarge { props, limit } => write!(
                f,
                "alphabet of {props} propositions exceeds the explicit-state limit \
                 of {limit}; use the symbolic engine"
            ),
            CheckError::StateBudget { explored, budget } => write!(
                f,
                "reachable state space exceeds the explicit-engine budget of {budget} \
                 states ({explored} already materialised); raise ExplicitLimits::max_states \
                 or use the symbolic engine"
            ),
            CheckError::InitNotEnumerable(init) => write!(
                f,
                "initial-state predicate {init:?} is not propositional, so reachable \
                 explicit construction cannot enumerate its satisfying states"
            ),
        }
    }
}

impl std::error::Error for CheckError {}

/// Outcome of checking `M ⊨_r f`.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Does the property hold?
    pub holds: bool,
    /// Initial states (`⊨ I`) that violate `f` — counterexample seeds
    /// (at most [`Verdict::MAX_WITNESSES`] retained).
    pub violating: Vec<State>,
    /// Number of states satisfying the formula (over the whole `2^Σ`).
    pub sat_states: usize,
}

impl Verdict {
    /// Cap on retained counterexample states.
    pub const MAX_WITNESSES: usize = 16;
}

/// Default dense-universe width (2^24 ≈ 16.7M states). Kept as an alias of
/// [`ExplicitLimits::DEFAULT_DENSE_BITS`] for callers of the dense
/// constructors; it is **not** a ceiling on explicit checking any more —
/// wider targets go through [`Checker::reachable_from_components`].
pub const MAX_EXPLICIT_PROPS: usize = ExplicitLimits::DEFAULT_DENSE_BITS;

/// Universes smaller than this stay on the serial frontier paths even
/// when workers are configured: the per-round fan-out overhead would
/// dwarf the word scans.
const MIN_PARALLEL_UNIVERSE: usize = 1 << 12;

/// An explicit-state fair-CTL checker for one (possibly composed) system.
///
/// Owns its alphabet and CSR transition index, so it can be built either
/// from a materialised [`System`] or directly from components without one.
///
/// With [`Checker::with_workers`] the propositional labelling and the
/// frontier fixpoints run **block-parallel**: the universe is split into
/// word-aligned state blocks ([`CsrIndex::blocks`]), each worker scans its
/// blocks' slice of the CSR index through the `cmc-sched` claim loop, and
/// per-block results merge by bitwise OR — a set-semantics merge, so the
/// computed sets (and therefore verdicts, sat counts and witnesses) are
/// identical for every worker count.
#[derive(Debug)]
pub struct Checker {
    alphabet: Alphabet,
    universe: usize,
    csr: CsrIndex,
    workers: usize,
    space: StateSpace,
}

/// How checker indices map to states.
#[derive(Debug)]
enum StateSpace {
    /// Index `i` *is* the state pattern `State(i)`; universe is `2^|Σ|`.
    Dense,
    /// Index `i` is a hash-cons id; universe is the interned (reachable)
    /// state count. Every kernel below this enum is index-pure, so the
    /// fixpoints are byte-identical between the two modes.
    Reachable(StateInterner),
}

impl Checker {
    /// Create a checker with the default [`MAX_EXPLICIT_PROPS`] limit;
    /// fails when the state space is too large.
    pub fn new(system: &System) -> Result<Self, CheckError> {
        Checker::with_limit(system, MAX_EXPLICIT_PROPS)
    }

    /// Create a checker that refuses alphabets wider than `limit`
    /// propositions (the state space is `2^|Σ|`, so the limit bounds
    /// memory at `2^limit` bits per state set).
    pub fn with_limit(system: &System, limit: usize) -> Result<Self, CheckError> {
        let n = system.alphabet().len();
        if n > limit {
            return Err(CheckError::TooLarge { props: n, limit });
        }
        Ok(Checker {
            alphabet: system.alphabet().clone(),
            universe: 1usize << n,
            csr: CsrIndex::from_system(system),
            workers: 1,
            space: StateSpace::Dense,
        })
    }

    /// Build the kernel for the composition `M₁ ∘ … ∘ Mₙ ∘ (extra, I)`
    /// straight from the components: each component's transitions are
    /// frame-padded directly into the CSR index, skipping the exponential
    /// `System::compose` fold entirely. The union alphabet is accumulated
    /// in first-seen order, matching `Target::union_alphabet`.
    pub fn from_components(
        systems: &[&System],
        extra: &Alphabet,
        limit: usize,
    ) -> Result<Self, CheckError> {
        let union = systems
            .iter()
            .fold(Alphabet::empty(), |acc, s| acc.union(s.alphabet()))
            .union(extra);
        let n = union.len();
        if n > limit {
            return Err(CheckError::TooLarge { props: n, limit });
        }
        Ok(Checker {
            universe: 1usize << n,
            csr: CsrIndex::from_components(systems, &union),
            alphabet: union,
            workers: 1,
            space: StateSpace::Dense,
        })
    }

    /// Build a **reachable-only** kernel for `M₁ ∘ … ∘ Mₙ ∘ (extra, I)`:
    /// enumerate SAT(`init`) by pruned DFS over the union alphabet, then BFS
    /// outward applying each component's transitions through extract/splice
    /// on arbitrary-width [`StateVec`]s, hash-consing every discovered state
    /// to a dense id. Neither the `2^n` universe nor any unreachable frame
    /// padding is ever enumerated, so the width is bounded only by
    /// [`ExplicitLimits::max_states`] (and memory), not by 24 or 128 bits.
    ///
    /// `M ⊨_r f` verdicts from the resulting checker agree exactly with the
    /// dense kernel's (the fragment is successor-closed and contains all of
    /// SAT(`init`)); whole-universe sat counts are intentionally not
    /// reported — [`Checker::universe`] is the reachable state count here.
    pub fn reachable_from_components(
        systems: &[&System],
        extra: &Alphabet,
        init: &Formula,
        limits: &ExplicitLimits,
    ) -> Result<Self, CheckError> {
        let union = systems
            .iter()
            .fold(Alphabet::empty(), |acc, s| acc.union(s.alphabet()))
            .union(extra);
        for p in init.atomic_props() {
            if !union.contains(&p) {
                return Err(CheckError::UnknownProposition(p));
            }
        }
        if !init.is_propositional() {
            return Err(CheckError::InitNotEnumerable(init.to_string()));
        }
        let budget = limits.state_budget();
        let seeds = enumerate_sat(init, &union, budget)?;
        // Per-component stepper: union positions it owns plus a local
        // transition table keyed by the component-projected pattern.
        let comps: Vec<ComponentStep> = systems
            .iter()
            .map(|sys| ComponentStep::new(sys, &union))
            .collect();
        Self::reachable_bfs(union, seeds, &comps, budget)
    }

    /// Reachable-only kernel over one materialised [`System`], seeded from
    /// `seeds` (the SMV front-end's enumerated initial states). Same
    /// semantics as [`Checker::reachable_from_components`] with a single
    /// component and no extra alphabet.
    pub fn reachable_from_system(
        system: &System,
        seeds: &[State],
        limits: &ExplicitLimits,
    ) -> Result<Self, CheckError> {
        let union = system.alphabet().clone();
        let width = union.len();
        let comps = [ComponentStep::new(system, &union)];
        let seeds = seeds
            .iter()
            .map(|s| StateVec::from_state(*s, width))
            .collect();
        Self::reachable_bfs(union, seeds, &comps, limits.state_budget())
    }

    fn reachable_bfs(
        union: Alphabet,
        seeds: Vec<StateVec>,
        comps: &[ComponentStep],
        budget: usize,
    ) -> Result<Self, CheckError> {
        let mut interner = StateInterner::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for sv in seeds {
            if interner.len() >= budget {
                return Err(CheckError::StateBudget {
                    explored: interner.len(),
                    budget,
                });
            }
            interner.intern(sv);
        }
        // Ids are handed out in discovery order, so scanning 0..len *is*
        // the BFS queue; `next` chases the growing tail.
        let mut next = 0usize;
        while next < interner.len() {
            let id = next as u32;
            let sv = interner.get(next).clone();
            next += 1;
            for comp in comps {
                let local = sv.extract(&comp.positions);
                let Some(targets) = comp.table.get(&local) else {
                    continue;
                };
                for &t in targets {
                    let succ = sv.splice(&comp.positions, t);
                    if interner.lookup(&succ).is_none() && interner.len() >= budget {
                        return Err(CheckError::StateBudget {
                            explored: interner.len(),
                            budget,
                        });
                    }
                    let (tid, _) = interner.intern(succ);
                    edges.push((id, tid));
                }
            }
        }
        let universe = interner.len();
        Ok(Checker {
            universe,
            csr: CsrIndex::from_edges(universe, &edges),
            alphabet: union,
            workers: 1,
            space: StateSpace::Reachable(interner),
        })
    }

    /// Run the labelling and frontier passes block-parallel on up to
    /// `workers` threads (clamped to at least 1). `1` keeps the serial
    /// worklist kernels; any count computes identical sets.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Configured worker cap for block-parallel passes.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of state blocks the block-parallel passes fan out over
    /// (1 when running serially).
    pub fn partition_blocks(&self) -> usize {
        if self.parallel() {
            self.csr.blocks(self.workers * 4).len()
        } else {
            1
        }
    }

    fn parallel(&self) -> bool {
        self.workers > 1 && self.universe >= MIN_PARALLEL_UNIVERSE
    }

    /// The alphabet the checker's states range over.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states the kernel ranges over: `2^|Σ|` in dense mode, the
    /// interned (reachable) state count in reachable mode. This — not
    /// `2^|Σ|` — is what `StateSet::full` and the reflexive-EG collapse
    /// quantify over, so kernels never over-report past the fragment.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Is this a reachable-only (hash-compacted) kernel?
    pub fn is_reachable(&self) -> bool {
        matches!(self.space, StateSpace::Reachable(_))
    }

    /// Truth of propositional `f` at kernel index `i`.
    #[inline]
    fn eval_index(&self, f: &Formula, i: usize) -> bool {
        match &self.space {
            StateSpace::Dense => f.eval_in_state(&self.alphabet, State(i as u128)),
            StateSpace::Reachable(interner) => {
                let sv = interner.get(i);
                f.eval_bits(&self.alphabet, &|pos| sv.bit(pos))
            }
        }
    }

    /// The dense [`State`] pattern at kernel index `i`, when one exists
    /// (`None` only in reachable mode past 128 propositions).
    pub fn state_at(&self, i: usize) -> Option<State> {
        match &self.space {
            StateSpace::Dense => Some(State(i as u128)),
            StateSpace::Reachable(interner) => interner.get(i).to_state(),
        }
    }

    /// Kernel index of a dense state pattern, if it is in the space
    /// (always in dense mode; iff discovered in reachable mode).
    pub fn index_of_state(&self, s: State) -> Option<usize> {
        match &self.space {
            StateSpace::Dense => {
                let i = s.0 as usize;
                (i < self.universe).then_some(i)
            }
            StateSpace::Reachable(interner) => interner
                .lookup(&StateVec::from_state(s, self.alphabet.len().min(128)))
                .map(|id| id as usize),
        }
    }

    /// The CSR transition index (exposed for witness extraction).
    pub(crate) fn csr(&self) -> &CsrIndex {
        &self.csr
    }

    /// States satisfying a *propositional* formula.
    fn sat_propositional(&self, f: &Formula) -> Result<StateSet, CheckError> {
        // Validate alphabet membership up front for a precise error.
        for p in f.atomic_props() {
            if !self.alphabet.contains(&p) {
                return Err(CheckError::UnknownProposition(p));
            }
        }
        let mut out = StateSet::empty(self.universe);
        if self.parallel() {
            // Each worker labels a word-aligned block and returns just its
            // words; stitching writes disjoint ranges, so the result is
            // bit-identical to the serial scan.
            let blocks = self.csr.blocks(self.workers * 4);
            let locals = cmc_sched::run_bounded(blocks.len(), self.workers, |b| {
                let r = &blocks[b];
                let mut words = vec![0u64; (r.end - r.start).div_ceil(64)];
                for i in r.clone() {
                    if self.eval_index(f, i) {
                        words[(i - r.start) / 64] |= 1 << (i % 64);
                    }
                }
                words
            });
            for (r, local) in blocks.iter().zip(locals) {
                let local = local.expect("propositional block pass panicked");
                let first = r.start / 64;
                out.words_mut()[first..first + local.len()].copy_from_slice(&local);
            }
        } else {
            for i in 0..self.universe {
                if self.eval_index(f, i) {
                    out.insert_index(i);
                }
            }
        }
        Ok(out)
    }

    /// `EX S`: states with an `R`-successor in `S`. Because `R` is
    /// reflexive, `S ⊆ EX S` always holds. One word-scan over the members
    /// of `S` plus their CSR predecessor lists — `O(|S| + edges into S)`.
    /// Serial when `workers == 1`; otherwise each worker scans the
    /// members of `S` inside its state blocks (a contiguous slice of the
    /// CSR predecessor index) into a private set, and the private sets
    /// merge by OR — the same set for any worker count.
    fn pre_exists(&self, s: &StateSet) -> StateSet {
        let mut out = s.clone(); // reflexive stutter successor
        if self.parallel() {
            let blocks = self.csr.blocks(self.workers * 4);
            let locals = cmc_sched::run_bounded(blocks.len(), self.workers, |b| {
                let mut local = StateSet::empty(self.universe);
                for v in s.iter_indices_in(blocks[b].clone()) {
                    for &u in self.csr.predecessors(v) {
                        local.insert_index(u as usize);
                    }
                }
                local
            });
            for local in locals {
                out.union_with(&local.expect("pre block pass panicked"));
            }
        } else {
            for v in s.iter_indices() {
                for &u in self.csr.predecessors(v) {
                    out.insert_index(u as usize);
                }
            }
        }
        out
    }

    /// Least fixpoint `E[S1 U S2] = μZ. S2 ∨ (S1 ∧ EX Z)` as a backwards
    /// worklist: every state enters the frontier exactly once, so the
    /// whole fixpoint is `O(|S2| + |R| + 2^n/64)` instead of re-scanning
    /// the edge list per iteration. (The implicit stutter edge adds only
    /// `S1 ∧ Z ⊆ Z`, so it never grows the frontier.)
    fn until_exists(&self, s1: &StateSet, s2: &StateSet) -> StateSet {
        if self.parallel() {
            return self.until_exists_blocked(s1, s2);
        }
        let mut z = s2.clone();
        let mut frontier: Vec<u32> = s2.iter_indices().map(|i| i as u32).collect();
        while let Some(v) = frontier.pop() {
            for &u in self.csr.predecessors(v as usize) {
                if s1.contains_index(u as usize) && !z.contains_index(u as usize) {
                    z.insert_index(u as usize);
                    frontier.push(u);
                }
            }
        }
        z
    }

    /// Level-synchronous variant of the `EU` worklist for block-parallel
    /// runs: each round expands the whole current frontier (workers scan
    /// disjoint state blocks of it against `Z` as of round start and
    /// OR-merge their discoveries), then the freshly discovered states
    /// become the next frontier. Every state still enters `Z` exactly
    /// once, so total work stays `O(|R| + 2^n/64 · rounds)`; the computed
    /// fixpoint is the same set as the serial worklist's for any worker
    /// count or block decomposition.
    fn until_exists_blocked(&self, s1: &StateSet, s2: &StateSet) -> StateSet {
        let blocks = self.csr.blocks(self.workers * 4);
        let mut z = s2.clone();
        let mut frontier = s2.clone();
        loop {
            let locals = cmc_sched::run_bounded(blocks.len(), self.workers, |b| {
                let mut local = StateSet::empty(self.universe);
                for v in frontier.iter_indices_in(blocks[b].clone()) {
                    for &u in self.csr.predecessors(v) {
                        let ui = u as usize;
                        if s1.contains_index(ui) && !z.contains_index(ui) {
                            local.insert_index(ui);
                        }
                    }
                }
                local
            });
            let mut fresh = StateSet::empty(self.universe);
            for local in locals {
                fresh.union_with(&local.expect("until block pass panicked"));
            }
            if fresh.is_empty() {
                return z;
            }
            z.union_with(&fresh);
            frontier = fresh;
        }
    }

    /// Greatest fixpoint `EG S = νZ. S ∧ EX Z` by backwards removal: a
    /// state leaves `Z` once its last successor in `Z` is gone, and only
    /// the predecessors of freshly removed states are re-examined.
    ///
    /// Because `R` is reflexive, every state's stutter self-loop keeps it
    /// alive, the removal frontier starts (and stays) empty, and
    /// `EG S = S` — the generic kernel is kept so the algorithm remains
    /// correct should the reflexivity assumption ever be relaxed.
    fn global_exists(&self, s: &StateSet) -> StateSet {
        let z = s.clone();
        // Seed the removal frontier with Z-states whose successor count
        // within Z is zero. The stutter successor contributes 1 to every
        // Z-state, so no state qualifies and the fixpoint is immediate.
        debug_assert!(z.iter_indices().all(|v| z.contains_index(v)));
        z
    }

    /// Emerson–Lei fair `EG`: states with a fair path remaining in `S`.
    ///
    /// `νZ. S ∧ ⋀_i EX (E[S U (Z ∧ Fᵢ)])`, with two frontier-era savings
    /// over the seed: each inner `EU` is a single worklist pass, and a
    /// constraint whose target `Z ∧ Fᵢ` did not change between rounds
    /// reuses its cached `EX(E[S U ·])` set outright. When a state leaves
    /// the candidate set `Z`, exactly the constraints whose targets lost
    /// that state recompute their reach sets.
    fn global_exists_fair(&self, s: &StateSet, fair_sets: &[StateSet]) -> StateSet {
        let mut z = s.clone();
        let mut cache: Vec<Option<(StateSet, StateSet)>> = vec![None; fair_sets.len()];
        loop {
            let mut step = s.clone();
            for (fi, slot) in fair_sets.iter().zip(cache.iter_mut()) {
                // EX ( E[S U (Z ∧ Fᵢ)] )
                let mut target = z.clone();
                target.intersect_with(fi);
                match slot {
                    Some((prev, pre)) if *prev == target => step.intersect_with(pre),
                    _ => {
                        let reach = self.until_exists(s, &target);
                        let pre = self.pre_exists(&reach);
                        step.intersect_with(&pre);
                        *slot = Some((target, pre));
                    }
                }
            }
            if step == z {
                return z;
            }
            z = step;
        }
    }

    /// States from which at least one fair path starts.
    fn fair_states(&self, fair_sets: &[StateSet]) -> StateSet {
        self.global_exists_fair(&StateSet::full(self.universe), fair_sets)
    }

    /// Satisfaction set of `f` quantifying over all paths (trivial
    /// fairness).
    pub fn sat(&self, f: &Formula) -> Result<StateSet, CheckError> {
        self.sat_fair(f, &[])
    }

    /// Satisfaction set of `f` quantifying over paths fair w.r.t.
    /// `fairness` (the `F` of the restriction).
    pub fn sat_fair(&self, f: &Formula, fairness: &[Formula]) -> Result<StateSet, CheckError> {
        let fair_sets: Vec<StateSet> = fairness
            .iter()
            .filter(|c| **c != Formula::True) // `true` constrains nothing
            .map(|c| self.sat_fair(c, &[]))
            .collect::<Result<_, _>>()?;
        let fair = if fair_sets.is_empty() {
            StateSet::full(self.universe)
        } else {
            self.fair_states(&fair_sets)
        };
        self.sat_rec(f, &fair_sets, &fair)
    }

    fn sat_rec(
        &self,
        f: &Formula,
        fair_sets: &[StateSet],
        fair: &StateSet,
    ) -> Result<StateSet, CheckError> {
        use Formula::*;
        Ok(match f {
            True => StateSet::full(self.universe),
            False => StateSet::empty(self.universe),
            Ap(_) => self.sat_propositional(f)?,
            Not(g) => self.sat_rec(g, fair_sets, fair)?.complement(),
            And(a, b) => {
                let mut sa = self.sat_rec(a, fair_sets, fair)?;
                sa.intersect_with(&self.sat_rec(b, fair_sets, fair)?);
                sa
            }
            Or(a, b) => {
                let mut sa = self.sat_rec(a, fair_sets, fair)?;
                sa.union_with(&self.sat_rec(b, fair_sets, fair)?);
                sa
            }
            Implies(a, b) => {
                let mut sa = self.sat_rec(a, fair_sets, fair)?.complement();
                sa.union_with(&self.sat_rec(b, fair_sets, fair)?);
                sa
            }
            Iff(a, b) => {
                let sa = self.sat_rec(a, fair_sets, fair)?;
                let sb = self.sat_rec(b, fair_sets, fair)?;
                let mut both = sa.clone();
                both.intersect_with(&sb);
                let mut neither = sa.complement();
                neither.intersect_with(&sb.complement());
                both.union_with(&neither);
                both
            }
            Ex(g) => {
                // EX_fair g = EX (g ∧ fair)
                let mut sg = self.sat_rec(g, fair_sets, fair)?;
                sg.intersect_with(fair);
                self.pre_exists(&sg)
            }
            Ax(g) => {
                // AX g = ¬EX ¬g
                let mut notg = self.sat_rec(g, fair_sets, fair)?.complement();
                notg.intersect_with(fair);
                self.pre_exists(&notg).complement()
            }
            Ef(g) => {
                let mut sg = self.sat_rec(g, fair_sets, fair)?;
                sg.intersect_with(fair);
                self.until_exists(&StateSet::full(self.universe), &sg)
            }
            Af(g) => {
                // AF g = ¬EG ¬g
                let notg = self.sat_rec(g, fair_sets, fair)?.complement();
                self.eg_maybe_fair(&notg, fair_sets).complement()
            }
            Eg(g) => {
                let sg = self.sat_rec(g, fair_sets, fair)?;
                self.eg_maybe_fair(&sg, fair_sets)
            }
            Ag(g) => {
                // AG g = ¬EF ¬g
                let mut notg = self.sat_rec(g, fair_sets, fair)?.complement();
                notg.intersect_with(fair);
                self.until_exists(&StateSet::full(self.universe), &notg)
                    .complement()
            }
            Eu(a, b) => {
                let sa = self.sat_rec(a, fair_sets, fair)?;
                let mut sb = self.sat_rec(b, fair_sets, fair)?;
                sb.intersect_with(fair);
                self.until_exists(&sa, &sb)
            }
            Au(a, b) => {
                // A[a U b] = ¬( E[¬b U (¬a ∧ ¬b)] ∨ EG ¬b )
                let na = self.sat_rec(a, fair_sets, fair)?.complement();
                let nb = self.sat_rec(b, fair_sets, fair)?.complement();
                let mut nanb = na;
                nanb.intersect_with(&nb);
                let mut target = nanb;
                target.intersect_with(fair);
                let mut left = self.until_exists(&nb, &target);
                let right = self.eg_maybe_fair(&nb, fair_sets);
                left.union_with(&right);
                left.complement()
            }
        })
    }

    fn eg_maybe_fair(&self, s: &StateSet, fair_sets: &[StateSet]) -> StateSet {
        if fair_sets.is_empty() {
            self.global_exists(s)
        } else {
            self.global_exists_fair(s, fair_sets)
        }
    }

    /// `M ⊨ f` — `f` true in *every* state, over all paths.
    pub fn holds_everywhere(&self, f: &Formula) -> Result<bool, CheckError> {
        Ok(self.sat(f)?.len() == self.universe)
    }

    /// `M ⊨_r f` — `f` true in every state satisfying `r.init`,
    /// quantifying over `r.fairness`-fair paths.
    ///
    /// In reachable mode `sat_states` counts over the reachable fragment
    /// (the kernel's universe), and violating witnesses past 128
    /// propositions are omitted (no dense [`State`] pattern exists), but
    /// `holds` is exact in both modes.
    pub fn check(&self, r: &Restriction, f: &Formula) -> Result<Verdict, CheckError> {
        let sat = self.sat_fair(f, &r.fairness)?;
        let init = self.sat(&r.init)?;
        let mut violating = Vec::new();
        let mut holds = true;
        for i in init.iter_indices() {
            if !sat.contains_index(i) {
                holds = false;
                match self.state_at(i) {
                    Some(s) if violating.len() < Verdict::MAX_WITNESSES => violating.push(s),
                    Some(_) => break,
                    // Too wide for a State pattern — the verdict stands
                    // without witness seeds.
                    None => break,
                }
            }
        }
        Ok(Verdict {
            holds,
            violating,
            sat_states: sat.len(),
        })
    }
}

/// One component's contribution to the on-the-fly BFS: the union positions
/// it owns and its transition table keyed by the locally-projected pattern.
/// Everything off `positions` is frame (unchanged) — §3.1's interleaving
/// semantics, realised by [`StateVec::extract`]/[`StateVec::splice`]
/// instead of enumerating frame paddings.
struct ComponentStep {
    positions: Vec<usize>,
    table: HashMap<u128, Vec<u128>>,
}

impl ComponentStep {
    fn new(system: &System, union: &Alphabet) -> Self {
        let positions: Vec<usize> = system
            .alphabet()
            .names()
            .iter()
            .map(|name| {
                union
                    .position(name)
                    .expect("component alphabet must embed in the union")
            })
            .collect();
        let mut table: HashMap<u128, Vec<u128>> = HashMap::new();
        for (s, t) in system.proper_transitions() {
            table.entry(s.0).or_default().push(t.0);
        }
        ComponentStep { positions, table }
    }
}

/// Enumerate SAT(`init`) over `alphabet` by DFS with partial evaluation:
/// each proposition is assigned in turn and the formula constant-folded
/// ([`Formula::assign`]), so branches die as soon as the residual hits
/// `False` and fully-true residuals fill their free suffix directly. A
/// one-hot predicate over 30 propositions thus yields its 30 states in
/// ~30² steps, not 2^30. Fails with [`CheckError::StateBudget`] once more
/// than `budget` satisfying states exist.
fn enumerate_sat(
    init: &Formula,
    alphabet: &Alphabet,
    budget: usize,
) -> Result<Vec<StateVec>, CheckError> {
    let n = alphabet.len();
    let mut out = Vec::new();
    let mut cur = StateVec::zero(n);
    sat_dfs(init, alphabet, 0, n, &mut cur, &mut out, budget)?;
    Ok(out)
}

fn sat_dfs(
    f: &Formula,
    alphabet: &Alphabet,
    pos: usize,
    n: usize,
    cur: &mut StateVec,
    out: &mut Vec<StateVec>,
    budget: usize,
) -> Result<(), CheckError> {
    match f {
        Formula::False => return Ok(()),
        Formula::True => {
            // Every completion of the remaining positions satisfies; spill
            // them all (budget-guarded) without further substitution.
            return fill_free(pos, n, cur, out, budget);
        }
        _ => {}
    }
    if pos == n {
        // All propositions assigned: the residual is a constant expression
        // (assign folded every Ap away), so evaluation is trivial.
        if f.eval_bits(alphabet, &|p| cur.bit(p)) {
            push_sat(cur, out, budget)?;
        }
        return Ok(());
    }
    let name = alphabet.name(pos);
    for value in [false, true] {
        let g = f.assign(name, value);
        cur.set(pos, value);
        sat_dfs(&g, alphabet, pos + 1, n, cur, out, budget)?;
    }
    cur.set(pos, false);
    Ok(())
}

fn fill_free(
    pos: usize,
    n: usize,
    cur: &mut StateVec,
    out: &mut Vec<StateVec>,
    budget: usize,
) -> Result<(), CheckError> {
    if pos == n {
        return push_sat(cur, out, budget);
    }
    // All 2^(n-pos) completions will be pushed — refuse up front when that
    // must blow the budget, instead of materialising budget-many states
    // first (a trivial init over a wide alphabet refuses in O(1)).
    let free = n - pos;
    if free >= usize::BITS as usize || out.len().saturating_add(1usize << free) > budget {
        return Err(CheckError::StateBudget {
            explored: out.len(),
            budget,
        });
    }
    for value in [false, true] {
        cur.set(pos, value);
        fill_free(pos + 1, n, cur, out, budget)?;
    }
    cur.set(pos, false);
    Ok(())
}

fn push_sat(cur: &StateVec, out: &mut Vec<StateVec>, budget: usize) -> Result<(), CheckError> {
    if out.len() >= budget {
        return Err(CheckError::StateBudget {
            explored: out.len(),
            budget,
        });
    }
    out.push(cur.clone());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_kripke::Alphabet;

    /// A 2-bit counter: 00 -> 01 -> 10 -> 11 -> 00 (plus stutter loops).
    fn counter() -> System {
        let mut m = System::new(Alphabet::new(["b0", "b1"]));
        m.add_transition_named(&[], &["b0"]);
        m.add_transition_named(&["b0"], &["b1"]);
        m.add_transition_named(&["b1"], &["b0", "b1"]);
        m.add_transition_named(&["b0", "b1"], &[]);
        m
    }

    fn ap(p: &str) -> Formula {
        Formula::ap(p)
    }

    #[test]
    fn propositional_sat_sets() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        assert_eq!(c.sat(&ap("b0")).unwrap().len(), 2);
        assert_eq!(c.sat(&Formula::True).unwrap().len(), 4);
        assert_eq!(c.sat(&ap("b0").and(ap("b1"))).unwrap().len(), 1);
        assert_eq!(c.sat(&ap("b0").not()).unwrap().len(), 2);
    }

    #[test]
    fn unknown_proposition_is_an_error() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        assert_eq!(
            c.sat(&ap("zz")),
            Err(CheckError::UnknownProposition("zz".into()))
        );
    }

    #[test]
    fn ex_includes_stutter() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        // Reflexivity: s ⊨ EX f whenever s ⊨ f.
        let f = ap("b0");
        let sat_f = c.sat(&f).unwrap();
        let sat_exf = c.sat(&f.clone().ex()).unwrap();
        assert!(sat_f.is_subset_of(&sat_exf));
        // 00 ⊨ EX b0 because 00 -> 01. In fact every state of the counter
        // satisfies EX b0 (10 -> 11, and 01/11 stutter).
        let al = m.alphabet().clone();
        assert_eq!(sat_exf.len(), 4);
        // EX (b0 ∧ b1) separates: only 10 (via 11) and 11 (stutter) satisfy.
        let goal = f.and(ap("b1")).ex();
        let sat_goal = c.sat(&goal).unwrap();
        assert_eq!(sat_goal.len(), 2);
        assert!(sat_goal.contains(State::from_names(&al, &["b1"])));
        assert!(!sat_goal.contains(State::from_names(&al, &[])));
    }

    #[test]
    fn ef_reaches_around_the_cycle() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        // Every state eventually reaches b0 ∧ b1 along some path.
        assert!(c.holds_everywhere(&ap("b0").and(ap("b1")).ef()).unwrap());
    }

    #[test]
    fn af_fails_without_fairness_due_to_stuttering() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        // Stuttering forever is a path, so AF (b0 ∧ b1) fails in states
        // other than 11 itself.
        let sat = c.sat(&ap("b0").and(ap("b1")).af()).unwrap();
        assert_eq!(sat.len(), 1);
    }

    #[test]
    fn fairness_discards_infinite_stuttering() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        // Fairness: infinitely often leave each non-goal "phase".
        // Constraint "b0∧b1 ∨ ¬(current)" is clumsy; the standard paper
        // trick (§4): require ¬p ∨ q infinitely often for each step.
        // Here a single constraint suffices: infinitely often b0∧b1
        // — then every fair path must cycle and AF (b0∧b1) holds everywhere.
        let fairness = [ap("b0").and(ap("b1"))];
        let sat = c.sat_fair(&ap("b0").and(ap("b1")).af(), &fairness).unwrap();
        assert_eq!(sat.len(), 4);
    }

    #[test]
    fn eg_detects_self_loops() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        // EG b0: stutter forever in 01 or 11.
        let sat = c.sat(&ap("b0").eg()).unwrap();
        assert_eq!(sat.len(), 2);
        // With fairness "infinitely often ¬b0", no fair path keeps b0.
        let sat_fair = c.sat_fair(&ap("b0").eg(), &[ap("b0").not()]).unwrap();
        assert!(sat_fair.is_empty());
    }

    #[test]
    fn until_operators() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        let al = m.alphabet().clone();
        // E[¬b1 U b1]: from 00 and 01 (b1 false, can reach b1) and any
        // state already satisfying b1.
        let f = ap("b1").not().eu(ap("b1"));
        let sat = c.sat(&f).unwrap();
        assert_eq!(sat.len(), 4);
        // A[¬b1 U b1] fails where stuttering avoids b1 forever.
        let g = ap("b1").not().au(ap("b1"));
        let sat_a = c.sat(&g).unwrap();
        assert!(sat_a.contains(State::from_names(&al, &["b1"])));
        assert!(!sat_a.contains(State::from_names(&al, &[])));
    }

    #[test]
    fn au_holds_under_step_fairness() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        // Rule 4 style fairness: infinitely often ¬(¬b1) ∨ b1 = b1.
        let verdict = c
            .check(
                &Restriction::new(Formula::True, [ap("b1")]),
                &ap("b1").not().au(ap("b1")),
            )
            .unwrap();
        assert!(verdict.holds, "violating: {:?}", verdict.violating);
    }

    #[test]
    fn restricted_check_reports_witnesses() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        // Under init b0∧b1, AX(b0∧b1) is false (successor 00 exists).
        let r = Restriction::with_init(ap("b0").and(ap("b1")));
        let v = c.check(&r, &ap("b0").and(ap("b1")).ax()).unwrap();
        assert!(!v.holds);
        assert_eq!(v.violating.len(), 1);
        // Under init FALSE everything holds vacuously.
        let r2 = Restriction::with_init(Formula::False);
        assert!(c.check(&r2, &Formula::False).unwrap().holds);
    }

    #[test]
    fn ax_eu_duality_spotcheck() {
        let m = counter();
        let c = Checker::new(&m).unwrap();
        // AX f == ¬EX¬f on every formula we try.
        for f in [ap("b0"), ap("b1").not(), ap("b0").iff(ap("b1"))] {
            let ax = c.sat(&f.clone().ax()).unwrap();
            let dual = c.sat(&f.clone().not().ex().not()).unwrap();
            assert_eq!(ax, dual, "AX duality failed for {f}");
        }
    }

    #[test]
    fn too_large_alphabet_rejected() {
        let names: Vec<String> = (0..25).map(|i| format!("p{i}")).collect();
        let m = System::new(Alphabet::new(names));
        let err = Checker::new(&m).unwrap_err();
        assert_eq!(
            err,
            CheckError::TooLarge {
                props: 25,
                limit: MAX_EXPLICIT_PROPS
            }
        );
        // The message names both the width and the configured limit.
        let msg = err.to_string();
        assert!(msg.contains("25"), "{msg}");
        assert!(msg.contains(&MAX_EXPLICIT_PROPS.to_string()), "{msg}");
    }

    #[test]
    fn limit_is_configurable() {
        let m = counter(); // 2 propositions
        assert!(Checker::with_limit(&m, 2).is_ok());
        assert_eq!(
            Checker::with_limit(&m, 1).unwrap_err(),
            CheckError::TooLarge { props: 2, limit: 1 }
        );
    }

    /// A 12-bit ripple counter: 4096 states in one cycle, large enough to
    /// cross `MIN_PARALLEL_UNIVERSE` and exercise the block kernels.
    fn big_counter() -> System {
        let names: Vec<String> = (0..12).map(|i| format!("b{i}")).collect();
        let mut m = System::new(Alphabet::new(names));
        for i in 0u128..4096 {
            m.add_transition(State(i), State((i + 1) % 4096));
        }
        m
    }

    #[test]
    fn block_parallel_passes_match_serial_for_every_worker_count() {
        let m = big_counter();
        let serial = Checker::new(&m).unwrap();
        assert!(!serial.parallel());
        assert_eq!(serial.partition_blocks(), 1);
        let formulas = [
            ap("b11"),
            ap("b0").and(ap("b5")).ef(),
            Formula::eu(ap("b11").not(), ap("b11").and(ap("b0"))),
            ap("b3").not().eg(),
            ap("b0").and(ap("b1")).af(),
        ];
        let baseline: Vec<StateSet> = formulas.iter().map(|f| serial.sat(f).unwrap()).collect();
        for workers in [2, 4, 8] {
            let par = Checker::new(&m).unwrap().with_workers(workers);
            assert!(par.parallel());
            assert!(par.partition_blocks() > 1);
            for (f, want) in formulas.iter().zip(&baseline) {
                let got = par.sat(f).unwrap();
                assert_eq!(&got, want, "{workers} workers disagree on {f}");
            }
        }
    }

    #[test]
    fn fair_sat_and_verdicts_are_worker_count_invariant() {
        let m = big_counter();
        let fairness = [ap("b11")];
        let goal = ap("b0").and(ap("b11")).af();
        let serial = Checker::new(&m).unwrap();
        let want = serial.sat_fair(&goal, &fairness).unwrap();
        let r = Restriction::with_fairness(fairness.clone());
        let v0 = serial.check(&r, &goal).unwrap();
        for workers in [2, 8] {
            let par = Checker::new(&m).unwrap().with_workers(workers);
            assert_eq!(par.sat_fair(&goal, &fairness).unwrap(), want);
            let v = par.check(&r, &goal).unwrap();
            assert_eq!(v.holds, v0.holds);
            assert_eq!(v.violating, v0.violating);
            assert_eq!(v.sat_states, v0.sat_states);
        }
    }

    /// An `n`-station token ring as hand-built components: station `i`
    /// owns `{t_i, t_(i+1 mod n)}` and passes the token along. With a
    /// one-hot initial state only the `n` one-hot valuations are
    /// reachable, out of a `2^n` dense universe.
    fn ring_stations(n: usize) -> Vec<System> {
        (0..n)
            .map(|i| {
                let j = (i + 1) % n;
                let here = format!("t{i}");
                let next = format!("t{j}");
                let mut m = System::new(Alphabet::new([here.clone(), next.clone()]));
                m.add_transition_named(&[&here], &[&next]);
                m
            })
            .collect()
    }

    fn one_hot(n: usize) -> Formula {
        Formula::or_many((0..n).map(|i| {
            Formula::and_many((0..n).map(|j| {
                let p = Formula::ap(format!("t{j}"));
                if i == j {
                    p
                } else {
                    p.not()
                }
            }))
        }))
    }

    #[test]
    fn reachable_kernel_matches_dense_verdicts() {
        let stations = ring_stations(6);
        let refs: Vec<&System> = stations.iter().collect();
        let extra = Alphabet::empty();
        let r = Restriction::with_init(one_hot(6));
        let dense = Checker::from_components(&refs, &extra, MAX_EXPLICIT_PROPS).unwrap();
        let limits = ExplicitLimits::default();
        let reach = Checker::reachable_from_components(&refs, &extra, &r.init, &limits).unwrap();
        assert!(reach.is_reachable() && !dense.is_reachable());
        for spec in [
            ap("t0").implies(ap("t1").ef()),
            one_hot(6).ag(),
            ap("t0").ef(),
            ap("t0").not().eg(),
        ] {
            let vd = dense.check(&r, &spec).unwrap();
            let vr = reach.check(&r, &spec).unwrap();
            assert_eq!(vd.holds, vr.holds, "verdicts disagree on {spec}");
            assert_eq!(
                vd.violating, vr.violating,
                "witness seeds disagree on {spec}"
            );
        }
    }

    /// Regression (PR 9 satellite): kernels that quantify over the
    /// universe (`StateSet::full`, the reflexive-EG collapse,
    /// `holds_everywhere`) must use the *interned* state count in
    /// reachable mode. The dense kernel counts all `2^n` valuations —
    /// including the 2^6 − 6 unreachable ones — so its sat counts
    /// over-report; the reachable kernel's universe is exactly the ring's
    /// 6 one-hot states.
    #[test]
    fn reachable_universe_is_interned_count_not_a_power_of_two() {
        let n = 6;
        let stations = ring_stations(n);
        let refs: Vec<&System> = stations.iter().collect();
        let extra = Alphabet::empty();
        let init = one_hot(n);
        let dense = Checker::from_components(&refs, &extra, MAX_EXPLICIT_PROPS).unwrap();
        let reach =
            Checker::reachable_from_components(&refs, &extra, &init, &ExplicitLimits::default())
                .unwrap();
        assert_eq!(dense.universe(), 1 << n);
        assert_eq!(reach.universe(), n, "only the one-hot states are reachable");
        // EG true = true collapses to the whole universe in both modes —
        // the dense count includes unreachable paddings, the reachable one
        // does not.
        let eg_true = Formula::True.eg();
        assert_eq!(dense.sat(&eg_true).unwrap().len(), 1 << n);
        assert_eq!(reach.sat(&eg_true).unwrap().len(), n);
        // Over the fragment, one-hot is an invariant: every reachable
        // state satisfies it, so holds_everywhere is true there while the
        // dense universe (rightly, per M ⊨ f) says no.
        assert!(reach.holds_everywhere(&init).unwrap());
        assert!(!dense.holds_everywhere(&init).unwrap());
        // Restricted verdicts still agree exactly.
        let r = Restriction::with_init(init.clone());
        let spec = init.clone().ag();
        assert_eq!(
            dense.check(&r, &spec).unwrap().holds,
            reach.check(&r, &spec).unwrap().holds
        );
    }

    #[test]
    fn reachable_construction_honours_the_state_budget() {
        let stations = ring_stations(8);
        let refs: Vec<&System> = stations.iter().collect();
        let extra = Alphabet::empty();
        // 8 reachable states against a budget of 4: refuse, telling the
        // caller how far discovery got.
        let limits = ExplicitLimits {
            dense_bits: 0,
            max_states: Some(4),
        };
        let err =
            Checker::reachable_from_components(&refs, &extra, &one_hot(8), &limits).unwrap_err();
        assert_eq!(
            err,
            CheckError::StateBudget {
                explored: 4,
                budget: 4
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("budget of 4"), "{msg}");
        // Unbounded limits admit the same construction.
        let ok = Checker::reachable_from_components(
            &refs,
            &extra,
            &one_hot(8),
            &ExplicitLimits::unbounded(),
        )
        .unwrap();
        assert_eq!(ok.universe(), 8);
    }

    #[test]
    fn reachable_rejects_temporal_init() {
        let stations = ring_stations(4);
        let refs: Vec<&System> = stations.iter().collect();
        let err = Checker::reachable_from_components(
            &refs,
            &Alphabet::empty(),
            &ap("t0").ef(),
            &ExplicitLimits::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::InitNotEnumerable(_)));
    }

    #[test]
    fn reachable_witness_extraction_works_by_index() {
        let stations = ring_stations(5);
        let refs: Vec<&System> = stations.iter().collect();
        let reach = Checker::reachable_from_components(
            &refs,
            &Alphabet::empty(),
            &one_hot(5),
            &ExplicitLimits::default(),
        )
        .unwrap();
        // AG t0 fails from the t0 state: the token moves on.
        let r = Restriction::with_init(ap("t0"));
        let v = reach.check(&r, &ap("t0").ag()).unwrap();
        assert!(!v.holds);
        assert_eq!(v.violating.len(), 1);
        let from = reach.sat(&ap("t0")).unwrap();
        let w = reach.counterexample_ag(&from, &ap("t0")).unwrap().unwrap();
        assert!(!w.stem.is_empty());
        let last = *w.stem.last().unwrap();
        // The final state is a one-hot state without the token at 0.
        let al = reach.alphabet().clone();
        assert!(!last.contains_named(&al, "t0"));
    }

    #[test]
    fn small_universes_stay_serial_even_with_workers() {
        let m = counter();
        let c = Checker::new(&m).unwrap().with_workers(8);
        assert_eq!(c.workers(), 8);
        assert!(!c.parallel(), "2^2 states must not fan out");
        assert_eq!(c.partition_blocks(), 1);
        assert_eq!(c.sat(&ap("b0").ef()).unwrap().len(), 4);
    }
}
