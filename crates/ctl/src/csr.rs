//! Compressed-sparse-row adjacency indices over the `2^n` state space.
//!
//! The frontier kernel in [`crate::checker`] needs constant-time access to
//! the predecessors (for `pre`-style fixpoints) and successors (for
//! witness extraction) of a state. This module builds both directions once
//! — either from a materialised [`System`] or *directly from component
//! systems*, enumerating each component's transitions padded over the
//! frame propositions it does not own (§3.1's composition), so the
//! exponential interleaving product is never constructed as a `System` at
//! all.
//!
//! Layout: the standard CSR pair `(offsets, edges)` per direction, with
//! `u32` entries (the explicit-state limit caps indices far below `2^32`).
//! A system with no proper transitions keeps both arrays empty and every
//! adjacency query returns the empty slice, so constructing a checker for
//! a wide but edge-free system stays O(1) in the universe size.

use cmc_kripke::{Alphabet, State, System};

/// Immutable predecessor/successor adjacency over a fixed `2^n` universe.
///
/// Only *proper* (non-reflexive) transitions are stored; the paper's
/// implicit stutter transitions are handled algebraically by the kernel
/// (`S ⊆ EX S` always holds).
#[derive(Debug, Clone, Default)]
pub struct CsrIndex {
    universe: usize,
    /// `pred_off[v]..pred_off[v+1]` indexes `pred` with the sources of
    /// edges into `v`. Empty when the relation has no proper transitions.
    pred_off: Vec<u32>,
    pred: Vec<u32>,
    succ_off: Vec<u32>,
    succ: Vec<u32>,
}

impl CsrIndex {
    /// Index the proper transitions of one system over its own alphabet.
    pub fn from_system(system: &System) -> Self {
        let universe = 1usize << system.alphabet().len();
        let edges = || {
            system
                .proper_transitions()
                .map(|(s, t)| (s.0 as u32, t.0 as u32))
        };
        Self::build(universe, system.proper_transition_count(), edges)
    }

    /// Build from an explicit edge list over an arbitrary dense-id space.
    ///
    /// This is the entry point for the reachable-only kernel: the on-the-fly
    /// BFS interns states to dense ids (`0..universe`) and hands the edges it
    /// discovered here — the universe is the *interned* state count, not a
    /// power of two, and no frame padding is ever enumerated.
    pub fn from_edges(universe: usize, edges: &[(u32, u32)]) -> Self {
        Self::build(universe, edges.len(), || edges.iter().copied())
    }

    /// Index the interleaving composition `M₁ ∘ … ∘ Mₙ ∘ (extra, I)`
    /// directly from its components: each component transition is embedded
    /// into the union alphabet and replicated over every valuation of the
    /// propositions the component does not own. Equivalent to
    /// `from_system` of the materialised product, without ever building
    /// the product's `BTreeMap`s.
    pub fn from_components(systems: &[&System], union: &Alphabet) -> Self {
        let n = union.len();
        let universe = 1usize << n;
        let full_mask = if n == 0 { 0u128 } else { (1u128 << n) - 1 };
        // Per-component embedded edges plus frame masks, computed once.
        let mut padded: Vec<(u128, Vec<(u32, u32)>)> = Vec::with_capacity(systems.len());
        let mut total = 0usize;
        for sys in systems {
            let own = sys.alphabet();
            let mut owned_mask = 0u128;
            for name in own.names() {
                owned_mask |= 1u128
                    << union
                        .position(name)
                        .expect("component alphabet outside the union");
            }
            let frame = full_mask & !owned_mask;
            let base: Vec<(u32, u32)> = sys
                .proper_transitions()
                .map(|(s, t)| (s.embed(own, union).0 as u32, t.embed(own, union).0 as u32))
                .collect();
            total += base.len() << frame.count_ones();
            padded.push((frame, base));
        }
        let edges = || {
            padded.iter().flat_map(|(frame, base)| {
                base.iter().flat_map(move |&(s, t)| {
                    subsets(*frame).map(move |r| (s | r as u32, t | r as u32))
                })
            })
        };
        Self::build(universe, total, edges)
    }

    /// Two counting-sort passes over the edge enumeration: count
    /// in-degrees/out-degrees, prefix-sum into offsets, scatter.
    fn build<I, F>(universe: usize, total: usize, edges: F) -> Self
    where
        I: Iterator<Item = (u32, u32)>,
        F: Fn() -> I,
    {
        if total == 0 {
            return CsrIndex {
                universe,
                ..CsrIndex::default()
            };
        }
        let mut pred_off = vec![0u32; universe + 1];
        let mut succ_off = vec![0u32; universe + 1];
        for (s, t) in edges() {
            pred_off[t as usize + 1] += 1;
            succ_off[s as usize + 1] += 1;
        }
        for v in 0..universe {
            pred_off[v + 1] += pred_off[v];
            succ_off[v + 1] += succ_off[v];
        }
        let mut pred = vec![0u32; total];
        let mut succ = vec![0u32; total];
        let mut pred_fill = pred_off.clone();
        let mut succ_fill = succ_off.clone();
        for (s, t) in edges() {
            pred[pred_fill[t as usize] as usize] = s;
            pred_fill[t as usize] += 1;
            succ[succ_fill[s as usize] as usize] = t;
            succ_fill[s as usize] += 1;
        }
        CsrIndex {
            universe,
            pred_off,
            pred,
            succ_off,
            succ,
        }
    }

    /// Number of states in the universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of proper edges indexed (duplicates across components are
    /// kept — they are harmless to the fixpoints).
    pub fn edge_count(&self) -> usize {
        self.pred.len()
    }

    /// Sources of proper transitions into state `v`.
    #[inline]
    pub fn predecessors(&self, v: usize) -> &[u32] {
        if self.pred_off.is_empty() {
            return &[];
        }
        &self.pred[self.pred_off[v] as usize..self.pred_off[v + 1] as usize]
    }

    /// Targets of proper transitions out of state `u`.
    #[inline]
    pub fn successors(&self, u: usize) -> &[u32] {
        if self.succ_off.is_empty() {
            return &[];
        }
        &self.succ[self.succ_off[u] as usize..self.succ_off[u + 1] as usize]
    }

    /// Successors as [`State`]s (witness extraction convenience).
    pub fn successor_states(&self, u: State) -> impl Iterator<Item = State> + '_ {
        self.successors(u.0 as usize)
            .iter()
            .map(|&t| State(t as u128))
    }

    /// Partition the universe into at most `count` contiguous state
    /// blocks, each aligned to a 64-state word boundary (the last block
    /// absorbs the tail). Because the CSR offset arrays are indexed by
    /// state, each block owns a contiguous slice of the predecessor and
    /// successor edge arrays — this *is* the partition of the index the
    /// block-parallel frontier passes fan out over, and word alignment
    /// means per-block results land in disjoint [`StateSet`] words.
    ///
    /// Returns at least one block (the whole universe) and never an empty
    /// block; for tiny universes fewer than `count` blocks come back.
    pub fn blocks(&self, count: usize) -> Vec<std::ops::Range<usize>> {
        block_ranges(self.universe, count)
    }

    /// Number of predecessor-edge entries whose *target* lies in `block`
    /// (the slice of the index a worker assigned that block will scan).
    pub fn pred_edges_in(&self, block: &std::ops::Range<usize>) -> usize {
        if self.pred_off.is_empty() {
            return 0;
        }
        (self.pred_off[block.end] - self.pred_off[block.start]) as usize
    }
}

/// Word-aligned contiguous block decomposition of `0..universe`.
pub(crate) fn block_ranges(universe: usize, count: usize) -> Vec<std::ops::Range<usize>> {
    let words = universe.div_ceil(64).max(1);
    let count = count.clamp(1, words);
    let words_per_block = words.div_ceil(count);
    let mut out = Vec::new();
    let mut start_word = 0usize;
    while start_word < words {
        let end_word = (start_word + words_per_block).min(words);
        let start = start_word * 64;
        let end = (end_word * 64).min(universe);
        if start < end || (universe == 0 && out.is_empty()) {
            out.push(start..end);
        }
        start_word = end_word;
    }
    if out.is_empty() {
        out.push(0..universe);
    }
    out
}

/// Iterate all subsets of the set bits of `mask` (including `0` and
/// `mask`) — the frame valuations of §3.1.
fn subsets(mask: u128) -> impl Iterator<Item = u128> {
    let mut cur = 0u128;
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let out = cur;
        if cur == mask {
            done = true;
        } else {
            cur = cur.wrapping_sub(mask) & mask;
        }
        Some(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggler(name: &str) -> System {
        let mut m = System::new(Alphabet::new([name]));
        m.add_transition_named(&[], &[name]);
        m.add_transition_named(&[name], &[]);
        m
    }

    #[test]
    fn from_system_indexes_both_directions() {
        let mut m = System::new(Alphabet::new(["a", "b"]));
        m.add_transition_named(&[], &["a"]);
        m.add_transition_named(&["a"], &["a", "b"]);
        m.add_transition_named(&["b"], &["a", "b"]);
        let csr = CsrIndex::from_system(&m);
        assert_eq!(csr.universe(), 4);
        assert_eq!(csr.edge_count(), 3);
        assert_eq!(csr.successors(0b00), &[0b01]);
        assert_eq!(csr.predecessors(0b11), &[0b01, 0b10]);
        assert_eq!(csr.predecessors(0b00), &[] as &[u32]);
    }

    #[test]
    fn empty_relation_stays_lazy() {
        let m = System::new(Alphabet::new(["a", "b", "c"]));
        let csr = CsrIndex::from_system(&m);
        assert_eq!(csr.edge_count(), 0);
        for v in 0..8 {
            assert!(csr.predecessors(v).is_empty());
            assert!(csr.successors(v).is_empty());
        }
    }

    /// The component-built index must cover exactly the edge *set* of the
    /// materialised product (the product dedups shared edges; the CSR may
    /// keep duplicates, so compare as sets).
    #[test]
    fn from_components_matches_materialised_product() {
        use std::collections::BTreeSet;
        let m = toggler("x");
        let mp = toggler("y");
        let union = m.alphabet().union(mp.alphabet());
        let csr = CsrIndex::from_components(&[&m, &mp], &union);
        let product = m.compose(&mp);
        let want: BTreeSet<(u32, u32)> = product
            .proper_transitions()
            .map(|(s, t)| (s.0 as u32, t.0 as u32))
            .collect();
        let mut got = BTreeSet::new();
        for u in 0..csr.universe() {
            for &t in csr.successors(u) {
                got.insert((u as u32, t));
            }
        }
        assert_eq!(got, want);
        // Predecessor direction agrees with successor direction.
        let mut via_pred = BTreeSet::new();
        for v in 0..csr.universe() {
            for &s in csr.predecessors(v) {
                via_pred.insert((s, v as u32));
            }
        }
        assert_eq!(via_pred, got);
    }

    #[test]
    fn blocks_cover_the_universe_word_aligned() {
        for (universe, count) in [(1 << 10, 4), (1 << 10, 1), (130, 3), (64, 8), (1, 4)] {
            let ranges = block_ranges(universe, count);
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, universe);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "blocks must tile");
                assert_eq!(w[0].end % 64, 0, "interior boundaries word-aligned");
            }
            assert!(ranges.len() <= count.max(1));
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn pred_edges_partition_across_blocks() {
        let m = toggler("x");
        let mp = toggler("y");
        let union = m.alphabet().union(mp.alphabet());
        let csr = CsrIndex::from_components(&[&m, &mp], &union);
        let blocks = csr.blocks(4);
        let total: usize = blocks.iter().map(|b| csr.pred_edges_in(b)).sum();
        assert_eq!(total, csr.edge_count(), "block edge slices must tile");
    }

    #[test]
    fn from_components_respects_extra_identity_frame() {
        // One toggler expanded over an extra proposition: the frame bit
        // never changes across any edge.
        let m = toggler("x");
        let union = m.alphabet().union(&Alphabet::new(["z"]));
        let csr = CsrIndex::from_components(&[&m], &union);
        assert_eq!(csr.edge_count(), 4); // 2 edges × 2 frame valuations
        for u in 0..csr.universe() {
            for &t in csr.successors(u) {
                assert_eq!(u as u32 & 0b10, t & 0b10, "frame bit moved");
            }
        }
    }
}
