//! Sound simplification of CTL formulas.
//!
//! Specs assembled programmatically (e.g. the generated obligations of the
//! compositional rules) accumulate redundant structure — double negations,
//! constant subformulas, idempotent conjuncts. This module normalises them
//! with rewrite rules that are sound under **fair** semantics, i.e. for
//! every restriction `(I, F)`, not just the trivial one.
//!
//! That last point is delicate: familiar identities like `EF true = true`
//! or `AG false = false` are *unsound* under fairness (both reduce to "a
//! fair path exists from here", which can be false). Every rule below is
//! fairness-sound; the property-based tests check equivalence against the
//! checker under randomly chosen fairness constraints.

use crate::ast::Formula;

/// Simplify a formula with fairness-sound rewrite rules until fixpoint.
pub fn simplify(f: &Formula) -> Formula {
    let mut cur = f.clone();
    loop {
        let next = simplify_once(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

fn simplify_once(f: &Formula) -> Formula {
    use Formula::*;
    // Bottom-up.
    let f = match f {
        True | False | Ap(_) => f.clone(),
        Not(a) => simplify_once(a).not(),
        And(a, b) => simplify_once(a).and(simplify_once(b)),
        Or(a, b) => simplify_once(a).or(simplify_once(b)),
        Implies(a, b) => simplify_once(a).implies(simplify_once(b)),
        Iff(a, b) => simplify_once(a).iff(simplify_once(b)),
        Ex(a) => simplify_once(a).ex(),
        Ax(a) => simplify_once(a).ax(),
        Ef(a) => simplify_once(a).ef(),
        Af(a) => simplify_once(a).af(),
        Eg(a) => simplify_once(a).eg(),
        Ag(a) => simplify_once(a).ag(),
        Eu(a, b) => simplify_once(a).eu(simplify_once(b)),
        Au(a, b) => simplify_once(a).au(simplify_once(b)),
    };
    rewrite_root(f)
}

fn rewrite_root(f: Formula) -> Formula {
    use Formula::*;
    match f {
        // Boolean constant folding.
        Not(a) => match *a {
            True => False,
            False => True,
            Not(inner) => *inner, // double negation
            other => Not(Box::new(other)),
        },
        And(a, b) => match (*a, *b) {
            (True, x) | (x, True) => x,
            (False, _) | (_, False) => False,
            (x, y) if x == y => x, // idempotence
            // Absorption: x ∧ (x ∨ y) = x.
            (x, Or(p, q)) if x == *p || x == *q => x,
            (Or(p, q), x) if x == *p || x == *q => x,
            (x, y) => x.and(y),
        },
        Or(a, b) => match (*a, *b) {
            (False, x) | (x, False) => x,
            (True, _) | (_, True) => True,
            (x, y) if x == y => x,
            // Absorption: x ∨ (x ∧ y) = x.
            (x, And(p, q)) if x == *p || x == *q => x,
            (And(p, q), x) if x == *p || x == *q => x,
            (x, y) => x.or(y),
        },
        Implies(a, b) => match (*a, *b) {
            (True, x) => x,
            (False, _) => True,
            (_, True) => True,
            (x, False) => x.not(),
            (x, y) if x == y => True,
            (x, y) => x.implies(y),
        },
        Iff(a, b) => match (*a, *b) {
            (True, x) | (x, True) => x,
            (False, x) | (x, False) => x.not(),
            (x, y) if x == y => True,
            (x, y) => x.iff(y),
        },
        // Temporal rules — fairness-sound subset only.
        Ex(a) => match *a {
            False => False, // no fair successor in ∅
            other => Ex(Box::new(other)),
        },
        Ax(a) => match *a {
            True => True, // ¬EX false
            other => Ax(Box::new(other)),
        },
        Ef(a) => match *a {
            False => False,
            Ef(inner) => Ef(inner), // idempotence
            other => Ef(Box::new(other)),
        },
        Af(a) => match *a {
            True => True, // ¬EG_fair false = ¬false
            Af(inner) => Af(inner),
            other => Af(Box::new(other)),
        },
        Eg(a) => match *a {
            False => False,
            Eg(inner) => Eg(inner),
            other => Eg(Box::new(other)),
        },
        Ag(a) => match *a {
            True => True, // ¬EF_fair false
            Ag(inner) => Ag(inner),
            other => Ag(Box::new(other)),
        },
        Eu(a, b) => match (*a, *b) {
            (_, False) => False, // lfp with empty target
            (x, y) => x.eu(y),
        },
        Au(a, b) => match (*a, *b) {
            (_, True) => True, // target holds immediately on every path
            (x, y) => x.au(y),
        },
        other => other,
    }
}

/// Size of a formula (number of AST nodes) — used to report simplification
/// gains and by tests.
pub fn formula_size(f: &Formula) -> usize {
    use Formula::*;
    match f {
        True | False | Ap(_) => 1,
        Not(a) | Ex(a) | Ax(a) | Ef(a) | Af(a) | Eg(a) | Ag(a) => 1 + formula_size(a),
        And(a, b) | Or(a, b) | Implies(a, b) | Iff(a, b) | Eu(a, b) | Au(a, b) => {
            1 + formula_size(a) + formula_size(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn s(text: &str) -> String {
        simplify(&parse(text).unwrap()).to_string()
    }

    #[test]
    fn boolean_folding() {
        assert_eq!(s("p & TRUE"), "p");
        assert_eq!(s("p & FALSE"), "FALSE");
        assert_eq!(s("p | TRUE"), "TRUE");
        assert_eq!(s("!!p"), "p");
        assert_eq!(s("p & p"), "p");
        assert_eq!(s("p | p & q"), "p");
        assert_eq!(s("p & (p | q)"), "p");
        assert_eq!(s("TRUE -> p"), "p");
        assert_eq!(s("p -> p"), "TRUE");
        assert_eq!(s("p <-> TRUE"), "p");
        assert_eq!(s("p <-> FALSE"), "!p");
    }

    #[test]
    fn temporal_folding() {
        assert_eq!(s("EX FALSE"), "FALSE");
        assert_eq!(s("AX TRUE"), "TRUE");
        assert_eq!(s("EF FALSE"), "FALSE");
        assert_eq!(s("AF TRUE"), "TRUE");
        assert_eq!(s("EG FALSE"), "FALSE");
        assert_eq!(s("AG TRUE"), "TRUE");
        assert_eq!(s("EF EF p"), "EF p");
        assert_eq!(s("AG AG p"), "AG p");
        assert_eq!(s("E [p U FALSE]"), "FALSE");
        assert_eq!(s("A [p U TRUE]"), "TRUE");
    }

    #[test]
    fn fairness_unsound_rules_not_applied() {
        // These must NOT fold (see module docs).
        assert_eq!(s("EF TRUE"), "EF TRUE");
        assert_eq!(s("EG TRUE"), "EG TRUE");
        assert_eq!(s("AG FALSE"), "AG FALSE");
        assert_eq!(s("AF FALSE"), "AF FALSE");
        assert_eq!(s("E [p U TRUE]"), "E [p U TRUE]");
        assert_eq!(s("A [p U FALSE]"), "A [p U FALSE]");
    }

    #[test]
    fn nested_simplification_to_fixpoint() {
        assert_eq!(s("!!(p & TRUE) | FALSE"), "p");
        assert_eq!(s("AG (TRUE & (q -> q))"), "TRUE");
        assert_eq!(s("EX (FALSE | EX FALSE)"), "FALSE");
    }

    #[test]
    fn size_metric() {
        assert_eq!(formula_size(&parse("p").unwrap()), 1);
        assert_eq!(formula_size(&parse("p & q").unwrap()), 3);
        assert_eq!(formula_size(&parse("AG (p -> AX q)").unwrap()), 5);
        let before = parse("!!(p & TRUE)").unwrap();
        let after = simplify(&before);
        assert!(formula_size(&after) < formula_size(&before));
    }
}
