//! Restriction indices `r = (I, F)` — initial condition plus fairness
//! constraints (§2.2 of the paper).
//!
//! The paper folds initial conditions and fairness into the *property*
//! rather than the system: `M ⊨_r f` holds iff `f` is true in every state
//! satisfying `I`, with path quantifiers ranging over fair paths only. A
//! path is fair iff every formula of `F` holds at infinitely many states
//! along it.

use crate::ast::Formula;
use std::fmt;

/// A restriction `r = (I, F)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Restriction {
    /// Initial condition `I` (a CTL formula; propositional in practice).
    pub init: Formula,
    /// Fairness constraints `F`: each must hold infinitely often on fair
    /// paths. The paper's trivial restriction carries `{true}`.
    pub fairness: Vec<Formula>,
}

impl Restriction {
    /// The trivial restriction `(true, {true})` — plain CTL satisfaction,
    /// written `⊨` in the paper.
    pub fn trivial() -> Self {
        Restriction {
            init: Formula::True,
            fairness: vec![Formula::True],
        }
    }

    /// Restriction with an initial condition only: `(I, {true})`.
    pub fn with_init(init: Formula) -> Self {
        Restriction {
            init,
            fairness: vec![Formula::True],
        }
    }

    /// Restriction with fairness constraints only: `(true, F)`.
    pub fn with_fairness(fairness: impl IntoIterator<Item = Formula>) -> Self {
        let mut fairness: Vec<Formula> = fairness.into_iter().collect();
        if fairness.is_empty() {
            fairness.push(Formula::True);
        }
        Restriction {
            init: Formula::True,
            fairness,
        }
    }

    /// Full restriction `(I, F)`.
    pub fn new(init: Formula, fairness: impl IntoIterator<Item = Formula>) -> Self {
        let mut r = Restriction::with_fairness(fairness);
        r.init = init;
        r
    }

    /// Is this the trivial restriction (no effect on satisfaction)?
    pub fn is_trivial(&self) -> bool {
        self.init == Formula::True && self.fairness.iter().all(|f| *f == Formula::True)
    }

    /// Conjoin another initial condition (strengthening `I`).
    pub fn strengthen_init(mut self, extra: Formula) -> Self {
        self.init = if self.init == Formula::True {
            extra
        } else {
            self.init.and(extra)
        };
        self
    }

    /// Add fairness constraints (strengthening `F`). Lemma 11 shows that
    /// `p ⇒ AX q` properties are preserved under this strengthening.
    pub fn strengthen_fairness(mut self, extra: impl IntoIterator<Item = Formula>) -> Self {
        self.fairness.extend(extra);
        self
    }
}

impl Default for Restriction {
    fn default() -> Self {
        Restriction::trivial()
    }
}

impl fmt::Display for Restriction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {{", self.init)?;
        for (i, c) in self.fairness.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_restriction() {
        let r = Restriction::trivial();
        assert!(r.is_trivial());
        assert_eq!(r.to_string(), "(TRUE, {TRUE})");
    }

    #[test]
    fn with_init_not_trivial() {
        let r = Restriction::with_init(Formula::ap("p"));
        assert!(!r.is_trivial());
        assert_eq!(r.fairness, vec![Formula::True]);
    }

    #[test]
    fn empty_fairness_defaults_to_true() {
        let r = Restriction::with_fairness([]);
        assert_eq!(r.fairness, vec![Formula::True]);
        assert!(r.is_trivial());
    }

    #[test]
    fn strengthening() {
        let r = Restriction::trivial()
            .strengthen_init(Formula::ap("init_ok"))
            .strengthen_fairness([Formula::ap("p").not().or(Formula::ap("q"))]);
        assert_eq!(r.init, Formula::ap("init_ok"));
        assert_eq!(r.fairness.len(), 2);
        // Strengthening a non-trivial init conjoins.
        let r2 = r.strengthen_init(Formula::ap("more"));
        assert_eq!(r2.init, Formula::ap("init_ok").and(Formula::ap("more")));
    }
}
