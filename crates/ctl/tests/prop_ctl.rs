//! Property-based tests for the CTL layer: print/parse round-trips,
//! existential-normal-form preservation, simplification soundness under
//! random fairness, and quantifier dualities.

use cmc_ctl::{parse, rewrite, Checker, Formula, Restriction};
use cmc_kripke::{Alphabet, State, System};
use proptest::prelude::*;

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        Just(Formula::ap("p")),
        Just(Formula::ap("q")),
        Just(Formula::ap("r")),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            inner.clone().prop_map(|f| f.ex()),
            inner.clone().prop_map(|f| f.ax()),
            inner.clone().prop_map(|f| f.ef()),
            inner.clone().prop_map(|f| f.af()),
            inner.clone().prop_map(|f| f.eg()),
            inner.clone().prop_map(|f| f.ag()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eu(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.au(b)),
        ]
    })
}

fn arb_system() -> impl Strategy<Value = System> {
    proptest::collection::vec((0u32..8, 0u32..8), 0..14).prop_map(|pairs| {
        let mut m = System::new(Alphabet::new(["p", "q", "r"]));
        for (s, t) in pairs {
            m.add_transition(State(s as u128), State(t as u128));
        }
        m
    })
}

fn arb_prop() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::ap("p")),
        Just(Formula::ap("q")),
        Just(Formula::True),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pretty-printing then reparsing is the identity.
    #[test]
    fn print_parse_roundtrip(f in arb_formula()) {
        let printed = f.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("{e} while reparsing {printed:?}"));
        prop_assert_eq!(f, reparsed);
    }

    /// The existential normal form has the same satisfaction set.
    #[test]
    fn enf_preserves_semantics(m in arb_system(), f in arb_formula()) {
        let checker = Checker::new(&m).unwrap();
        let orig = checker.sat(&f).unwrap();
        let enf = checker.sat(&f.to_existential_normal_form()).unwrap();
        prop_assert_eq!(orig, enf, "ENF changed semantics of {}", f);
    }

    /// `simplify` preserves the satisfaction set — including under a
    /// random fairness constraint (the rules are fairness-sound).
    #[test]
    fn simplify_sound_under_fairness(
        m in arb_system(),
        f in arb_formula(),
        fair in arb_prop(),
    ) {
        let checker = Checker::new(&m).unwrap();
        let simplified = rewrite::simplify(&f);
        let fairness = [fair];
        let orig = checker.sat_fair(&f, &fairness).unwrap();
        let simp = checker.sat_fair(&simplified, &fairness).unwrap();
        prop_assert_eq!(orig, simp, "simplify changed {} into {}", f, simplified);
    }

    /// Simplification never grows the formula.
    #[test]
    fn simplify_never_grows(f in arb_formula()) {
        let simplified = rewrite::simplify(&f);
        prop_assert!(rewrite::formula_size(&simplified) <= rewrite::formula_size(&f));
    }

    /// Quantifier dualities hold semantically on random systems.
    #[test]
    fn dualities(m in arb_system(), f in arb_formula()) {
        let checker = Checker::new(&m).unwrap();
        let ax = checker.sat(&f.clone().ax()).unwrap();
        let dual_ax = checker.sat(&f.clone().not().ex().not()).unwrap();
        prop_assert_eq!(ax, dual_ax);
        let ag = checker.sat(&f.clone().ag()).unwrap();
        let dual_ag = checker.sat(&f.clone().not().ef().not()).unwrap();
        prop_assert_eq!(ag, dual_ag);
        let af = checker.sat(&f.clone().af()).unwrap();
        let dual_af = checker.sat(&f.clone().not().eg().not()).unwrap();
        prop_assert_eq!(af, dual_af);
    }

    /// Reflexivity consequences: f ⇒ EX f and AX f ⇒ f hold everywhere.
    #[test]
    fn reflexivity_consequences(m in arb_system(), f in arb_formula()) {
        let checker = Checker::new(&m).unwrap();
        let sat_f = checker.sat(&f).unwrap();
        let sat_exf = checker.sat(&f.clone().ex()).unwrap();
        prop_assert!(sat_f.is_subset_of(&sat_exf));
        let sat_axf = checker.sat(&f.clone().ax()).unwrap();
        prop_assert!(sat_axf.is_subset_of(&sat_f));
    }

    /// Restriction checking is monotone in the initial condition: if
    /// `M ⊨_(I,F) f` then `M ⊨_(I∧J,F) f`.
    #[test]
    fn init_strengthening_monotone(
        m in arb_system(),
        f in arb_formula(),
        i in arb_prop(),
        j in arb_prop(),
    ) {
        let checker = Checker::new(&m).unwrap();
        let weak = Restriction::with_init(i.clone());
        let strong = Restriction::with_init(i.and(j));
        if checker.check(&weak, &f).unwrap().holds {
            prop_assert!(checker.check(&strong, &f).unwrap().holds);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The CTL parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(src in ".{0,40}") {
        let _ = parse(&src);
    }

    /// ... including SMV-flavoured fragments.
    #[test]
    fn parser_never_panics_on_fragments(
        parts in proptest::collection::vec(
            proptest::strategy::Union::new([
                proptest::strategy::Strategy::boxed(proptest::prelude::Just("AG".to_string())),
                proptest::strategy::Strategy::boxed(proptest::prelude::Just("E [".to_string())),
                proptest::strategy::Strategy::boxed(proptest::prelude::Just("U".to_string())),
                proptest::strategy::Strategy::boxed(proptest::prelude::Just("]".to_string())),
                proptest::strategy::Strategy::boxed(proptest::prelude::Just("->".to_string())),
                proptest::strategy::Strategy::boxed(proptest::prelude::Just("p = q".to_string())),
                proptest::strategy::Strategy::boxed(proptest::prelude::Just("!=".to_string())),
                proptest::strategy::Strategy::boxed(proptest::prelude::Just("(".to_string())),
                proptest::strategy::Strategy::boxed(proptest::prelude::Just("TRUE".to_string())),
            ]),
            0..12,
        )
    ) {
        let _ = parse(&parts.join(" "));
    }
}
