//! The alternating-bit protocol (ABP) over lossy channels — a second
//! protocol case study in the paper's motivating domain ("network
//! protocols", §1), built to exercise the parts of the theory AFS does
//! not: **Rule 5's strong fairness in a real composition**, where the
//! lossy channel genuinely disables the helpful transition and the
//! `pⱼ ⇒ EF p_helpful` obligations restore progress.
//!
//! ## The protocol
//!
//! Three components share a data channel `msg ∈ {none, d0, d1}` and an
//! acknowledgement channel `ack ∈ {none, a0, a1}` (capacity-1, modelled
//! as shared variables):
//!
//! * **sender** (owns `sbit`): when its current ack arrives it flips
//!   `sbit` and clears both channels; when `msg` is empty it (re)sends
//!   `d(sbit)` — retransmission is what tolerates loss;
//! * **receiver** (owns `rbit`): consumes any message, always re-acks the
//!   message's bit, and *delivers* (flips `rbit`) exactly when the bit
//!   was the expected one;
//! * **loss daemon** (owns nothing): may drop either channel at any time.
//!
//! ## Verified properties
//!
//! * **Safety** (compositional, invariant rule): in-flight data always
//!   carries the sender's current bit, and a matching ack implies the
//!   receiver has already advanced — together these give the classic "no
//!   duplicated, no reordered delivery" correctness of ABP.
//! * **Liveness** (Rule 5): delivery of the first message. Rule 4 is
//!   *inapplicable* — loss disables the receiver's helpful transition —
//!   but the retransmission path satisfies the `EF` re-enabling
//!   obligations, so Rule 5 concludes `p ⇒ A(p U delivered)` under the
//!   strong-fairness restriction.

use cmc_core::engine::{Certificate, Component, Engine};
use cmc_core::rules::{rule4, rule5, RuleError};
use cmc_ctl::{Formula, Restriction};
use cmc_smv::{compile_explicit, parse_module, ExplicitCompiled, Module};

/// The sender module.
pub fn sender_module() -> Module {
    parse_module(
        "MODULE main
VAR
  sbit : boolean;
  msg : {none, d0, d1};
  ack : {none, a0, a1};
DEFINE
  got_ack := (ack = a0 & !sbit) | (ack = a1 & sbit);
ASSIGN
  next(sbit) := case got_ack : !sbit; 1 : sbit; esac;
  next(msg) := case
    got_ack : none;
    msg = none & !sbit : d0;
    msg = none & sbit : d1;
    1 : msg;
  esac;
  next(ack) := case got_ack : none; 1 : ack; esac;
",
    )
    .expect("sender module parses")
}

/// The receiver module.
pub fn receiver_module() -> Module {
    parse_module(
        "MODULE main
VAR
  rbit : boolean;
  msg : {none, d0, d1};
  ack : {none, a0, a1};
ASSIGN
  next(rbit) := case
    (msg = d0 & !rbit) | (msg = d1 & rbit) : !rbit;
    1 : rbit;
  esac;
  next(ack) := case
    msg = d0 : a0;
    msg = d1 : a1;
    1 : ack;
  esac;
  next(msg) := case msg != none : none; 1 : msg; esac;
",
    )
    .expect("receiver module parses")
}

/// The loss daemon: may drop either channel.
pub fn loss_module() -> Module {
    parse_module(
        "MODULE main
VAR
  msg : {none, d0, d1};
  ack : {none, a0, a1};
ASSIGN
  next(msg) := case msg != none : {msg, none}; 1 : msg; esac;
  next(ack) := case ack != none : {ack, none}; 1 : ack; esac;
",
    )
    .expect("loss module parses")
}

/// Explicitly compiled components, in `[sender, receiver, loss]` order.
pub fn components() -> Vec<ExplicitCompiled> {
    vec![
        compile_explicit(&sender_module()).unwrap(),
        compile_explicit(&receiver_module()).unwrap(),
        compile_explicit(&loss_module()).unwrap(),
    ]
}

/// The proof engine over `sender ∘ receiver ∘ loss`.
pub fn engine() -> Engine {
    let comps = components();
    let names = ["sender", "receiver", "loss"];
    Engine::new(
        comps
            .into_iter()
            .zip(names)
            .map(|(c, n)| Component::new(n, c.system))
            .collect(),
    )
}

/// A vocabulary for formulas over the union alphabet.
pub fn vocabulary() -> ExplicitCompiled {
    compile_explicit(
        &parse_module(
            "MODULE main
VAR
  sbit : boolean;
  rbit : boolean;
  msg : {none, d0, d1};
  ack : {none, a0, a1};
",
        )
        .unwrap(),
    )
    .unwrap()
}

/// The initial condition: both bits 0, channels empty.
pub fn initial_condition() -> Formula {
    vocabulary()
        .parse_formula("!sbit & !rbit & msg = none & ack = none")
        .unwrap()
}

/// The ABP correctness invariant:
///
/// * in-flight data carries the sender's current bit
///   (`msg = d0 ⇒ ¬sbit`, `msg = d1 ⇒ sbit`),
/// * a matching in-flight ack means the receiver has advanced past the
///   sender's bit (`ack = a0 ∧ ¬sbit ⇒ rbit`, `ack = a1 ∧ sbit ⇒ ¬rbit`).
pub fn invariant() -> Formula {
    vocabulary()
        .parse_formula(
            "(msg = d0 -> !sbit) & (msg = d1 -> sbit) & \
             (ack = a0 & !sbit -> rbit) & (ack = a1 & sbit -> !rbit)",
        )
        .unwrap()
}

/// Prove the safety invariant compositionally.
pub fn prove_safety() -> Certificate {
    engine()
        .prove_invariant(&invariant(), &initial_condition(), &[])
        .expect("invariant proof runs")
}

/// Liveness via Rule 5: delivery of the first message (`AF rbit` from the
/// initial states). The cover distinguishes whether the helpful `d0` is
/// in flight; the loss daemon can leave the cover's helpful disjunct, so
/// Rule 4 fails, and the `EF` obligations (retransmission) repair it.
///
/// Returns the certificate; the final chained `AF rbit` is cross-checked
/// monolithically, like the paper's hand-chaining step.
pub fn prove_liveness() -> Certificate {
    let e = engine();
    let comps = components();
    let receiver = &comps[1];
    let v = vocabulary();
    let q = v.parse_formula("rbit").unwrap();
    // Cover of ¬rbit states, strengthened by the invariant so the EF
    // obligations range over protocol-consistent states only. (AG Inv was
    // established by `prove_safety`, so restricting attention to
    // Inv-states is sound.)
    let inv = invariant();
    let not_rbit = v.parse_formula("!rbit").unwrap();
    let helpful = v
        .parse_formula("msg = d0 & !rbit")
        .unwrap()
        .and(inv.clone());
    let rest = v
        .parse_formula("!(msg = d0) & !rbit")
        .unwrap()
        .and(inv.clone());
    let cover = [rest.clone(), helpful.clone()];

    let mut cert = Certificate::new("system ⊨_(I, F) AF rbit  [ABP delivery]");

    // Rule 4 must fail: the loss daemon disables the helpful transition.
    let p_all = not_rbit.clone().and(inv.clone());
    match rule4(
        &receiver.system,
        &receiver_local(&p_all),
        &receiver_local(&q),
    ) {
        Err(RuleError::PremiseFailed(_)) => cert.step(
            "Rule 4 inapplicable: helpful transition not always enabled (loss)",
            true,
            true,
        ),
        other => cert.step(format!("unexpected Rule 4 outcome: {other:?}"), false, true),
    }

    // Rule 5 on the receiver: premise p_helpful ⇒ EX q holds on the
    // receiver component (its own move delivers whenever d0 is pending).
    // Each cover disjunct is relativised to the receiver's alphabet and
    // to the Figure-3 domain-validity predicate (§3.4: the state space is
    // the valid encodings).
    let receiver_cover: Vec<Formula> = cover
        .iter()
        .map(|f| receiver_local(f).and(receiver.validity_formula()))
        .collect();
    match rule5(&receiver.system, &receiver_cover, 1, &receiver_local(&q)) {
        Ok(g) => {
            let sub = e.discharge(&g).expect("discharge runs");
            cert.step(
                format!(
                    "Rule 5 discharged ({} obligations, {})",
                    g.lhs.len(),
                    if sub.fully_compositional() {
                        "fully compositional"
                    } else {
                        "EF obligations checked on the composition"
                    }
                ),
                sub.valid,
                sub.fully_compositional(),
            );
            cert.valid &= sub.valid;
        }
        Err(err) => {
            cert.step(format!("Rule 5 failed: {err}"), false, true);
            cert.valid = false;
        }
    }

    // Chained conclusion, cross-checked monolithically: under I and the
    // strong-fairness constraint of Rule 5's restriction, AF rbit.
    let fairness = vec![p_all.clone().not().or(q.clone())];
    let r = Restriction::new(initial_condition(), fairness);
    let holds = e
        .monolithic_check(&r, &q.clone().af())
        .expect("monolithic cross-check runs");
    cert.step("chained conclusion AF rbit under (I, F)", holds, false);
    cert.valid &= holds;
    cert
}

/// Restrict a union-vocabulary formula to the receiver's alphabet by
/// dropping conjuncts over foreign variables. The receiver's alphabet is
/// `{rbit, msg, ack}` — `sbit` conjuncts are removed (sound for Rule-5
/// premises because weakening `p` only weakens the premise `p ⇒ EX q`
/// where it must hold on *more* states — so if the check passes, the
/// original cover's premise holds a fortiori).
fn receiver_local(f: &Formula) -> Formula {
    let receiver = compile_explicit(&receiver_module()).unwrap();
    prune_foreign(f, &receiver)
}

fn prune_foreign(f: &Formula, comp: &ExplicitCompiled) -> Formula {
    use Formula::*;
    // Replace any subformula mentioning a foreign proposition by TRUE
    // inside conjunctions (weakening).
    fn known(comp: &ExplicitCompiled, f: &Formula) -> bool {
        f.atomic_props()
            .iter()
            .all(|p| comp.system.alphabet().contains(p))
    }
    match f {
        And(a, b) => prune_foreign(a, comp).and(prune_foreign(b, comp)),
        other => {
            if known(comp, other) {
                other.clone()
            } else {
                True
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::{parse, Checker};

    /// The protocol actually works: a full handshake is reachable, and
    /// the bits cycle.
    #[test]
    fn protocol_runs() {
        let e = engine();
        let composed = e.composed();
        let v = vocabulary();
        let checker = Checker::new(&composed).unwrap();
        let init = checker.sat(&initial_condition()).unwrap();
        // Delivery of the first message.
        let delivered = checker
            .sat(&v.parse_formula("rbit & !sbit").unwrap().ef())
            .unwrap();
        for s in init.iter() {
            assert!(delivered.contains(s));
        }
        // And the second (bits return to 0,0 after a full cycle with the
        // sender having flipped twice) — i.e. EF of sbit flipping.
        let flipped = checker
            .sat(&v.parse_formula("sbit & rbit").unwrap().ef())
            .unwrap();
        for s in init.iter() {
            assert!(flipped.contains(s));
        }
    }

    /// E2-style: safety invariant proved compositionally.
    #[test]
    fn safety_compositional() {
        let cert = prove_safety();
        assert!(cert.valid, "{cert}");
        assert!(cert.fully_compositional(), "{cert}");
    }

    /// Safety cross-check: AG Inv monolithically.
    #[test]
    fn safety_monolithic_crosscheck() {
        let e = engine();
        let r = Restriction::with_init(initial_condition());
        assert!(e.monolithic_check(&r, &invariant().ag()).unwrap());
    }

    /// Loss makes Rule 4 fail but Rule 5 succeed — the paper's Figure-2
    /// phenomenon arising in a real protocol.
    #[test]
    fn liveness_needs_strong_fairness() {
        let cert = prove_liveness();
        assert!(cert.valid, "{cert}");
        assert!(cert
            .steps
            .iter()
            .any(|s| s.description.contains("Rule 4 inapplicable")));
    }

    /// Without fairness, loss can starve delivery forever.
    #[test]
    fn liveness_fails_without_fairness() {
        let e = engine();
        let r = Restriction::with_init(initial_condition());
        let v = vocabulary();
        assert!(!e
            .monolithic_check(&r, &v.parse_formula("rbit").unwrap().af())
            .unwrap());
    }

    /// A non-inductive candidate is rejected: `rbit ⇒ sbit` is violated
    /// by the receiver's first delivery (rbit flips while sbit is 0).
    #[test]
    fn non_inductive_invariant_rejected() {
        let e = engine();
        let v = vocabulary();
        let bad = v.parse_formula("rbit -> sbit").unwrap();
        let cert = e.prove_invariant(&bad, &initial_condition(), &[]).unwrap();
        assert!(!cert.valid, "{cert}");
    }

    /// Duplicates are never delivered: a resent d0 (after delivery) does
    /// not flip rbit back.
    #[test]
    fn no_duplicate_delivery() {
        let e = engine();
        let v = vocabulary();
        let r = Restriction::with_init(initial_condition());
        // Once rbit is set while sbit is still 0 (first message delivered,
        // ack possibly lost), rbit stays set until the sender moves on:
        // AG (rbit ∧ ¬sbit ⇒ AX (rbit ∨ sbit)) — a duplicate d0 must not
        // flip rbit back while the sender still sits at bit 0.
        let f = parse("AG (rbit & !sbit -> AX (rbit | sbit))").unwrap();
        let f = substitute(&f, &v);
        assert!(e.monolithic_check(&r, &f).unwrap());
    }

    fn substitute(f: &Formula, v: &ExplicitCompiled) -> Formula {
        // rbit/sbit are plain booleans, shared spelling — parse_formula
        // equivalent for temporal formulas over boolean atoms.
        use Formula::*;
        match f {
            Ap(p) => v.atoms.get(p).cloned().unwrap_or_else(|| Ap(p.clone())),
            True => True,
            False => False,
            Not(a) => substitute(a, v).not(),
            And(a, b) => substitute(a, v).and(substitute(b, v)),
            Or(a, b) => substitute(a, v).or(substitute(b, v)),
            Implies(a, b) => substitute(a, v).implies(substitute(b, v)),
            Iff(a, b) => substitute(a, v).iff(substitute(b, v)),
            Ex(a) => substitute(a, v).ex(),
            Ax(a) => substitute(a, v).ax(),
            Ef(a) => substitute(a, v).ef(),
            Af(a) => substitute(a, v).af(),
            Eg(a) => substitute(a, v).eg(),
            Ag(a) => substitute(a, v).ag(),
            Eu(a, b) => substitute(a, v).eu(substitute(b, v)),
            Au(a, b) => substitute(a, v).au(substitute(b, v)),
        }
    }
}
