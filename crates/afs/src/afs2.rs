//! AFS-2: the callback-based Andrew File System protocol 2 (§4.3).
//!
//! AFS-2 extends AFS-1 with updates, failures and transmission delay. The
//! paper models one server with `n` clients communicating through shared
//! `request_i` / `response_i` variables, with a per-client `time_i` flag
//! bounding the transmission delay of invalidation messages.
//!
//! This module provides:
//!
//! * the paper-exact single-client component models and specs (Figures
//!   12–14, 16) with drivers reproducing the check outputs (Figures 15,
//!   17),
//! * a generator for the full `n`-client system as an interleaving
//!   composition of SMV modules (server + `n` clients),
//! * the §4.3.4 invariant proof, both compositionally (per-component
//!   symbolic expansion checks) and monolithically (symbolic composition),
//! * the material for the Discussion's scaling claim: compositional cost
//!   is linear in `n`, monolithic cost grows with the product state space.
//!
//! Two documented deviations from the figures: (a) in each component model
//! the *foreign* shared variables are frozen (`next(x) := x`) rather than
//! left unconstrained — this matches the theory's expansion semantics
//! `M ∘ (Σ', I)` in which a component's moves never change environment
//! variables, and is required for Figure 16's (Cli1) to hold at all; (b)
//! the per-client `update` signal seen by the server is the disjunction of
//! the *other* clients' `request_j = update`, which Figure 12 shows for
//! the 2-client instance as the literal `request2 = update`.

use cmc_ctl::{parse, Formula, Restriction};
use cmc_smv::{
    compile_composition, compile_expansion, parse_module, run_source, union_variables,
    CompiledModel, Module, RunOutcome, SemError,
};

/// Figure 12 + Figure 14: the AFS-2 server (one client shown, a second
/// client's `request2` as the update source), paper-exact component model.
pub const SERVER1_SOURCE: &str = "
-- SMV implementation of the Server of the AFS-2 (Figure 12)
MODULE main
VAR
  validFile1 : boolean;
  belief1 : {nocall, valid};
  response1 : {null, val, inval};
  time1 : boolean;
  failure : boolean;
  request1 : {null, fetch, validate, update};
  request2 : {null, fetch, validate, update};
ASSIGN
  next(validFile1) := validFile1;
  next(belief1) :=
    case
      failure : nocall;
      (belief1 = nocall) & (request1 = fetch) : valid;
      (belief1 = nocall) & (request1 = validate) & validFile1 : valid;
      (belief1 = nocall) & (request1 = validate) & !validFile1 : nocall;
      (belief1 = valid) & (request2 = update) : nocall;
      1 : belief1;
    esac;
  next(response1) :=
    case
      failure : null;
      (belief1 = nocall) & (request1 = fetch) : val;
      (belief1 = nocall) & (request1 = validate) & validFile1 : val;
      (belief1 = nocall) & (request1 = validate) & !validFile1 : inval;
      (belief1 = valid) & (request2 = update) : inval;
      1 : response1;
    esac;
  next(time1) :=
    case
      failure : 0;
      (belief1 = nocall) & (request1 = validate) & !validFile1 : 0;
      (belief1 = valid) & (request2 = update) : 0;
      1 : time1;
    esac;
-- Specification of the Server of the AFS-2 (Figure 14)
-- Srv1
SPEC (belief1 = valid | !time1) -> AX (belief1 = valid | !time1)
-- Srv2
SPEC (response1 = val -> belief1 = valid) -> AX (response1 = val -> belief1 = valid)
";

/// Figure 13 + Figure 16: the AFS-2 client, paper-exact component model
/// (with the foreign `response` frozen — see the module docs).
pub const CLIENT1_SOURCE: &str = "
-- SMV implementation of the Client of the AFS-2 (Figure 13)
MODULE main
VAR
  time : boolean;
  request : {null, fetch, validate, update};
  belief : {valid, suspect, nofile};
  response : {null, val, inval};
  failure : boolean;
ASSIGN
  next(belief) :=
    case
      (belief = nofile) & (response = val) : valid;
      (belief = suspect) & (response = val) : valid;
      (belief = suspect) & (response = inval) : nofile;
      (belief = valid) & failure : suspect;
      (belief = valid) & (response = inval) : nofile;
      1 : belief;
    esac;
  next(request) :=
    case
      (belief = nofile) & (response = null) : {fetch, null};
      (belief = suspect) & (response = null) : {validate, null};
      (belief = valid) & failure : null;
      (belief = valid) & (response = inval) : null;
      (belief = valid) & (response != inval) : update;
      1 : request;
    esac;
  next(time) :=
    case
      (belief = nofile) & (response = val) : 1;
      (belief = suspect) & (response = val) : 1;
      (belief = suspect) & (response = inval) : 1;
      (belief = valid) & failure : 1;
      (belief = valid) & (response = inval) : 1;
      1 : time;
    esac;
  next(response) := response;
-- Specification of the Client of the AFS-2 (Figure 16)
-- Cli1
SPEC ((belief = valid -> !time) & response != val) ->
     AX ((belief = valid -> !time) & response != val)
";

/// Model-check the AFS-2 server component (reproduces Figure 15's output).
pub fn verify_server() -> RunOutcome {
    run_source(SERVER1_SOURCE).expect("server source is well-formed")
}

/// Model-check the AFS-2 client component (reproduces Figure 17's output).
pub fn verify_client() -> RunOutcome {
    run_source(CLIENT1_SOURCE).expect("client source is well-formed")
}

/// Generate the composition-facing server module for `n` clients.
pub fn server_module(n: usize) -> Module {
    assert!(n >= 1);
    let mut vars = String::from("  failure : boolean;\n");
    let mut assigns = String::new();
    let mut defines = String::new();
    for i in 1..=n {
        vars.push_str(&format!(
            "  validFile{i} : boolean;\n  sbelief{i} : {{nocall, valid}};\n  \
             response{i} : {{null, val, inval}};\n  time{i} : boolean;\n  \
             request{i} : {{null, fetch, validate, update}};\n"
        ));
        let update_other: Vec<String> = (1..=n)
            .filter(|&j| j != i)
            .map(|j| format!("request{j} = update"))
            .collect();
        let update_other = if update_other.is_empty() {
            "0".to_string()
        } else {
            update_other.join(" | ")
        };
        defines.push_str(&format!("  updateOther{i} := {update_other};\n"));
        assigns.push_str(&format!(
            "  next(validFile{i}) := validFile{i};\n\
             \x20 next(sbelief{i}) :=\n    case\n      failure : nocall;\n      \
             (sbelief{i} = nocall) & (request{i} = fetch) : valid;\n      \
             (sbelief{i} = nocall) & (request{i} = validate) & validFile{i} : valid;\n      \
             (sbelief{i} = nocall) & (request{i} = validate) & !validFile{i} : nocall;\n      \
             (sbelief{i} = valid) & updateOther{i} : nocall;\n      \
             1 : sbelief{i};\n    esac;\n\
             \x20 next(response{i}) :=\n    case\n      failure : null;\n      \
             (sbelief{i} = nocall) & (request{i} = fetch) : val;\n      \
             (sbelief{i} = nocall) & (request{i} = validate) & validFile{i} : val;\n      \
             (sbelief{i} = nocall) & (request{i} = validate) & !validFile{i} : inval;\n      \
             (sbelief{i} = valid) & updateOther{i} : inval;\n      \
             1 : response{i};\n    esac;\n\
             \x20 next(time{i}) :=\n    case\n      failure : 0;\n      \
             (sbelief{i} = nocall) & (request{i} = validate) & !validFile{i} : 0;\n      \
             (sbelief{i} = valid) & updateOther{i} : 0;\n      \
             1 : time{i};\n    esac;\n\
             \x20 next(request{i}) := request{i};\n"
        ));
    }
    let src = format!("MODULE main\nVAR\n{vars}DEFINE\n{defines}ASSIGN\n{assigns}");
    parse_module(&src).expect("generated server module parses")
}

/// Generate the composition-facing module for client `i`.
pub fn client_module(i: usize) -> Module {
    let src = format!(
        "MODULE main\nVAR\n  failure : boolean;\n  time{i} : boolean;\n  \
         request{i} : {{null, fetch, validate, update}};\n  \
         cbelief{i} : {{valid, suspect, nofile}};\n  \
         response{i} : {{null, val, inval}};\n\
         ASSIGN\n\
         \x20 next(cbelief{i}) :=\n    case\n      \
         (cbelief{i} = nofile) & (response{i} = val) : valid;\n      \
         (cbelief{i} = suspect) & (response{i} = val) : valid;\n      \
         (cbelief{i} = suspect) & (response{i} = inval) : nofile;\n      \
         (cbelief{i} = valid) & failure : suspect;\n      \
         (cbelief{i} = valid) & (response{i} = inval) : nofile;\n      \
         1 : cbelief{i};\n    esac;\n\
         \x20 next(request{i}) :=\n    case\n      \
         (cbelief{i} = nofile) & (response{i} = null) : {{fetch, null}};\n      \
         (cbelief{i} = suspect) & (response{i} = null) : {{validate, null}};\n      \
         (cbelief{i} = valid) & failure : null;\n      \
         (cbelief{i} = valid) & (response{i} = inval) : null;\n      \
         (cbelief{i} = valid) & (response{i} != inval) : update;\n      \
         1 : request{i};\n    esac;\n\
         \x20 next(time{i}) :=\n    case\n      \
         (cbelief{i} = nofile) & (response{i} = val) : 1;\n      \
         (cbelief{i} = suspect) & (response{i} = val) : 1;\n      \
         (cbelief{i} = suspect) & (response{i} = inval) : 1;\n      \
         (cbelief{i} = valid) & failure : 1;\n      \
         (cbelief{i} = valid) & (response{i} = inval) : 1;\n      \
         1 : time{i};\n    esac;\n\
         \x20 next(response{i}) := response{i};\n"
    );
    parse_module(&src).expect("generated client module parses")
}

/// All `n + 1` component modules of the `n`-client system.
pub fn modules(n: usize) -> Vec<Module> {
    let mut out = vec![server_module(n)];
    for i in 1..=n {
        out.push(client_module(i));
    }
    out
}

/// The invariant `Inv` of §4.3.1, for all clients `i`:
///
/// ```text
/// (cbelief_i = valid ⇒ (sbelief_i = valid ∨ ¬time_i)) ∧
/// (response_i = val ⇒ sbelief_i = valid)
/// ```
pub fn invariant_formula(n: usize) -> Formula {
    Formula::and_many((1..=n).map(|i| {
        parse(&format!(
            "(cbelief{i} = valid -> (sbelief{i} = valid | !time{i})) & \
             (response{i} = val -> sbelief{i} = valid)"
        ))
        .unwrap()
    }))
}

/// The per-client safety property (Afs1) of §4.3.1 (implied by `Inv`).
pub fn afs1_formula(i: usize) -> Formula {
    parse(&format!(
        "AG (cbelief{i} = valid -> (sbelief{i} = valid | !time{i}))"
    ))
    .unwrap()
}

/// The initial condition `I` of §4.3.1, for all clients `i`.
pub fn initial_condition(n: usize) -> Formula {
    Formula::and_many((1..=n).map(|i| {
        parse(&format!(
            "(cbelief{i} = nofile | cbelief{i} = suspect) & request{i} = null & \
             sbelief{i} = nocall & response{i} = null"
        ))
        .unwrap()
    }))
}

/// Compile the full `n`-client system symbolically (the monolithic model).
pub fn compile_system(n: usize) -> CompiledModel {
    compile_composition(&modules(n)).expect("generated modules compose")
}

/// Per-step result of the compositional invariant proof.
#[derive(Debug, Clone)]
pub struct InvariantProof {
    /// `(component name, Inv ⇒ AX Inv holds on its expansion)`.
    pub component_checks: Vec<(String, bool)>,
    /// `I ⇒ Inv` validity.
    pub init_implies_inv: bool,
}

impl InvariantProof {
    /// Did the whole proof succeed?
    pub fn valid(&self) -> bool {
        self.init_implies_inv && self.component_checks.iter().all(|(_, ok)| *ok)
    }
}

/// §4.3.4 compositionally: check `Inv ⇒ AX Inv` on every component's
/// symbolic expansion (a universal property by Rule 2) and `I ⇒ Inv`.
/// Cost is linear in `n` — each check touches one component's transition
/// relation only.
pub fn prove_invariant_compositional(n: usize) -> Result<InvariantProof, SemError> {
    let mods = modules(n);
    let union = union_variables(&mods)?;
    let inv = invariant_formula(n);
    let obligation = inv.clone().implies(inv.clone().ax());
    let mut component_checks = Vec::new();
    for (k, m) in mods.iter().enumerate() {
        let mut expansion = compile_expansion(&union, m)?;
        let ok = expansion
            .model
            .holds_everywhere(&obligation)
            .map_err(|e| SemError(e.to_string()))?;
        let name = if k == 0 {
            "server".to_string()
        } else {
            format!("client{k}")
        };
        component_checks.push((name, ok));
    }
    // I ⇒ Inv, decided on any expansion's BDD vocabulary.
    let mut vocab = compile_expansion(&union, &mods[0])?;
    let init_bdd = vocab
        .model
        .prop_to_bdd(&initial_condition(n))
        .map_err(|e| SemError(e.to_string()))?;
    let inv_bdd = vocab
        .model
        .prop_to_bdd(&inv)
        .map_err(|e| SemError(e.to_string()))?;
    let init_implies_inv = vocab.model.mgr().implies_trivially(init_bdd, inv_bdd);
    Ok(InvariantProof {
        component_checks,
        init_implies_inv,
    })
}

/// §4.3.4 monolithically: build the full composition and check
/// `AG Inv` under `(I, {true})` directly. Cost grows with the product
/// state space — the Discussion's exponential baseline.
pub fn prove_invariant_monolithic(n: usize) -> Result<bool, SemError> {
    let mut system = compile_system(n);
    let r = Restriction::with_init(initial_condition(n));
    let inv = invariant_formula(n);
    let v = system
        .model
        .check(&r, &inv.ag())
        .map_err(|e| SemError(e.to_string()))?;
    Ok(v.holds)
}

/// Check the per-client (Afs1) property monolithically.
pub fn check_afs1_monolithic(n: usize, i: usize) -> Result<bool, SemError> {
    let mut system = compile_system(n);
    let r = Restriction::with_init(initial_condition(n));
    let v = system
        .model
        .check(&r, &afs1_formula(i))
        .map_err(|e| SemError(e.to_string()))?;
    Ok(v.holds)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// E9 (Figure 15): both server specs check true.
    #[test]
    fn figure_15_server_specs_true() {
        let out = verify_server();
        assert_eq!(out.results.len(), 2);
        assert!(out.all_true(), "{}", out.report);
        assert!(out.report.contains("BDD nodes allocated:"));
    }

    /// E10 (Figure 17): the client spec checks true.
    #[test]
    fn figure_17_client_spec_true() {
        let out = verify_client();
        assert_eq!(out.results.len(), 1);
        assert!(out.all_true(), "{}", out.report);
    }

    /// E11: the compositional invariant proof succeeds for n = 1, 2, 3.
    #[test]
    fn invariant_compositional_n123() {
        for n in 1..=3 {
            let proof = prove_invariant_compositional(n).unwrap();
            assert!(proof.valid(), "n={n}: {proof:?}");
            assert_eq!(proof.component_checks.len(), n + 1);
        }
    }

    /// E11 cross-check: the monolithic check agrees for small n.
    #[test]
    fn invariant_monolithic_crosscheck() {
        for n in 1..=2 {
            assert!(prove_invariant_monolithic(n).unwrap(), "n={n}");
        }
    }

    /// (Afs1) for each client follows.
    #[test]
    fn afs1_per_client_holds() {
        assert!(check_afs1_monolithic(1, 1).unwrap());
        assert!(check_afs1_monolithic(2, 1).unwrap());
        assert!(check_afs1_monolithic(2, 2).unwrap());
    }

    /// The invariant genuinely depends on the `time_i` bound: the naive
    /// AFS-1 invariant (client valid ⇒ server valid) is FALSE in AFS-2
    /// because of transmission delay — exactly the point of §4.3.
    #[test]
    fn afs1_style_invariant_fails_in_afs2() {
        let n = 2;
        let mut system = compile_system(n);
        let r = Restriction::with_init(initial_condition(n));
        let naive = parse("AG (cbelief1 = valid -> sbelief1 = valid)").unwrap();
        let v = system.model.check(&r, &naive).unwrap();
        assert!(
            !v.holds,
            "transmission delay must break the naive invariant"
        );
    }

    /// The update path is live: with two clients, client 2's update can
    /// invalidate client 1's callback (EF reachable).
    #[test]
    fn update_invalidates_other_client() {
        let n = 2;
        let mut system = compile_system(n);
        let r = Restriction::with_init(initial_condition(n));
        let f = parse("EF (cbelief1 = valid & sbelief1 = nocall & response1 = inval)").unwrap();
        // From every initial state there is a run where client 1 holds a
        // valid copy while the server has already invalidated it (the
        // transmission-delay window).
        let v = system.model.check(&r, &f).unwrap();
        assert!(v.holds);
    }

    /// Component counts and alphabets scale linearly with n.
    #[test]
    fn generated_modules_shape() {
        let mods = modules(3);
        assert_eq!(mods.len(), 4);
        // Server declares 5 variables per client + failure.
        assert_eq!(mods[0].vars.len(), 3 * 5 + 1);
        // Each client declares its 4 variables + failure + shared pair.
        assert_eq!(mods[1].vars.len(), 5);
        let union = union_variables(&mods).unwrap();
        // Union: failure + per client (validFile, sbelief, response, time,
        // request, cbelief) = 1 + 6n.
        assert_eq!(union.len(), 1 + 6 * 3);
    }

    /// Explicit cross-validation for n = 1: the kripke composition of the
    /// explicitly compiled components satisfies AG Inv too.
    #[test]
    fn explicit_crosscheck_n1() {
        use cmc_smv::compile_explicit;
        let mods = modules(1);
        let server = compile_explicit(&mods[0]).unwrap();
        let client = compile_explicit(&mods[1]).unwrap();
        let composed = server.system.compose(&client.system);
        let checker = cmc_ctl::Checker::new(&composed).unwrap();
        // Build bit-level formulas from the union vocabulary.
        let vocab_src = "MODULE main\nVAR\n  failure : boolean;\n  validFile1 : boolean;\n  \
                         sbelief1 : {nocall, valid};\n  response1 : {null, val, inval};\n  \
                         time1 : boolean;\n  request1 : {null, fetch, validate, update};\n  \
                         cbelief1 : {valid, suspect, nofile};\n";
        let vocab = compile_explicit(&parse_module(vocab_src).unwrap()).unwrap();
        let inv = vocab
            .parse_formula(
                "(cbelief1 = valid -> (sbelief1 = valid | !time1)) & \
                 (response1 = val -> sbelief1 = valid)",
            )
            .unwrap();
        let init = vocab
            .parse_formula(
                "(cbelief1 = nofile | cbelief1 = suspect) & request1 = null & \
                 sbelief1 = nocall & response1 = null",
            )
            .unwrap();
        // Embed the union-vocabulary formulas: the composed alphabet may
        // order bits differently, so re-map by name.
        let composed_al = composed.alphabet();
        let remap = |f: &Formula| -> Formula { remap_formula(f, composed_al) };
        let r = Restriction::with_init(remap(&init));
        let sat = checker.sat_fair(&remap(&inv).ag(), &r.fairness).unwrap();
        let init_set = checker.sat(&r.init).unwrap();
        for s in init_set.iter() {
            assert!(sat.contains(s), "explicit composition violates AG Inv");
        }
    }

    /// Identity remap: bit names are shared strings, so formulas transfer
    /// unchanged as long as every atom exists in the target alphabet.
    fn remap_formula(f: &Formula, target: &cmc_kripke::Alphabet) -> Formula {
        for ap in f.atomic_props() {
            assert!(
                target.contains(&ap),
                "missing bit {ap} in composed alphabet"
            );
        }
        f.clone()
    }
}
