//! AFS-1: the Andrew File System cache-coherence protocol 1 (§4.1–§4.2).
//!
//! Contains the paper's SMV sources (Figures 5, 6, 8, 9), drivers
//! reproducing the model-checking outputs (Figures 7 and 10), and the
//! compositional deduction of the system-level properties (Afs1) and
//! (Afs2) from §4.2.3, executed by the `cmc-core` proof engine with the
//! monolithic composition as a cross-check.
//!
//! One notational deviation: where both components use a local variable
//! called `belief`, the composition-facing models rename them `sbelief`
//! (server) and `cbelief` (client) — in the paper this disambiguation is
//! done in prose (`Server.belief` / `Client.belief`). The shared channel
//! `r` keeps its name and its value order, so the two components identify
//! it in composition. A second deviation: the paper's Figure-6 spec Srv3
//! is written without parentheses (`r=null -> AX r=null & …`), which SMV's
//! precedence reads as one nested implication; we write the three
//! conjuncts the surrounding text defines.

use cmc_core::engine::{Certificate, Component, Engine};
use cmc_core::rules::rule4;
use cmc_ctl::{Formula, Restriction};
use cmc_smv::{compile_explicit, parse_module, run_source, ExplicitCompiled, RunOutcome};

/// Figure 5 + Figure 6: the AFS-1 server and its specification.
pub const SERVER_SOURCE: &str = "
-- SMV implementation of the server in the AFS1 (Figure 5)
MODULE main
VAR
  belief : {none, invalid, valid};
  r : {null, fetch, validate, val, inval};
  validFile : boolean;
ASSIGN
  next(validFile) := validFile;
  next(belief) :=
    case
      (belief = none) & (r = fetch) : valid;
      (belief = invalid) & (r = fetch) : valid;
      (belief = none) & (r = validate) & validFile : valid;
      (belief = none) & (r = validate) & !validFile : invalid;
      1 : belief;
    esac;
  next(r) :=
    case
      (belief = none) & (r = fetch) : val;
      (belief = invalid) & (r = fetch) : val;
      (belief = none) & (r = validate) & validFile : val;
      (belief = none) & (r = validate) & !validFile : inval;
      (belief = valid) & (r = fetch) : val;
      1 : r;
    esac;
-- Specification of the server (Figure 6)
-- Srv1
SPEC (belief = valid) -> AX (belief = valid)
-- Srv2
SPEC (r = val -> belief = valid) -> AX (r = val -> belief = valid)
-- Srv3
SPEC (r = null -> AX r = null) & (r = val -> AX r = val) & (r = inval -> AX r = inval)
-- Srv4
SPEC (r = fetch -> AX (r = fetch | r = val)) &
     ((r = validate & belief = none) ->
       AX ((belief = none & r = validate) |
           (belief = valid & r = val) |
           (belief = invalid & r = inval)))
-- Srv5 (left side, model-checked per Rule 4)
SPEC (r = fetch -> EX (r = val)) &
     ((r = validate & belief = none) ->
       EX ((belief = valid & r = val) | (belief = invalid & r = inval)))
";

/// Figure 8 + Figure 9: the AFS-1 client and its specification.
pub const CLIENT_SOURCE: &str = "
-- SMV implementation of the client in the AFS1 (Figure 8)
MODULE main
VAR
  r : {null, fetch, validate, val, inval};
  belief : {valid, suspect, nofile};
ASSIGN
  next(belief) :=
    case
      (belief = nofile) & (r = val) : valid;
      (belief = suspect) & (r = val) : valid;
      (belief = suspect) & (r = inval) : nofile;
      1 : belief;
    esac;
  next(r) :=
    case
      (belief = nofile) & (r = null) : fetch;
      (belief = suspect) & (r = null) : validate;
      (belief = suspect) & (r = inval) : null;
      1 : r;
    esac;
-- Specification of the client (Figure 9)
-- Cli1
SPEC (belief != valid & r != val) -> AX (belief != valid & r != val)
-- Cli2
SPEC r = fetch -> AX r = fetch
SPEC r = validate -> AX r = validate
-- Cli3
SPEC ((belief = nofile & r = null) ->
       AX ((belief = nofile & r = null) | (belief = nofile & r = fetch))) &
     ((belief = nofile & r = fetch) ->
       AX ((belief = nofile & r = fetch) | (belief = nofile & r = val))) &
     ((belief = nofile & r = val) ->
       AX ((belief = nofile & r = val) | (belief = valid & r = val))) &
     ((belief = suspect & r = null) ->
       AX ((belief = suspect & r = null) | (belief = suspect & r = validate))) &
     ((belief = suspect & r = val) ->
       AX ((belief = suspect & r = val) | (belief = valid & r = val))) &
     ((belief = suspect & r = inval) ->
       AX ((belief = suspect & r = inval) | (belief = nofile & r = null)))
-- Cli4 (left side, model-checked per Rule 4)
SPEC ((belief = nofile & r = null) -> EX (belief = nofile & r = fetch)) &
     ((belief = nofile & r = val) -> EX (belief = valid & r = val))
-- Cli5 (left side, model-checked per Rule 4)
SPEC ((belief = suspect & r = null) -> EX (belief = suspect & r = validate)) &
     ((belief = suspect & r = val) -> EX (belief = valid & r = val)) &
     ((belief = suspect & r = inval) -> EX (belief = nofile & r = null))
";

/// The server model with `belief` renamed `sbelief`, for composition.
pub const SERVER_COMPOSED_SOURCE: &str = "
MODULE main
VAR
  sbelief : {none, invalid, valid};
  r : {null, fetch, validate, val, inval};
  validFile : boolean;
ASSIGN
  next(validFile) := validFile;
  next(sbelief) :=
    case
      (sbelief = none) & (r = fetch) : valid;
      (sbelief = invalid) & (r = fetch) : valid;
      (sbelief = none) & (r = validate) & validFile : valid;
      (sbelief = none) & (r = validate) & !validFile : invalid;
      1 : sbelief;
    esac;
  next(r) :=
    case
      (sbelief = none) & (r = fetch) : val;
      (sbelief = invalid) & (r = fetch) : val;
      (sbelief = none) & (r = validate) & validFile : val;
      (sbelief = none) & (r = validate) & !validFile : inval;
      (sbelief = valid) & (r = fetch) : val;
      1 : r;
    esac;
";

/// The client model with `belief` renamed `cbelief`, for composition.
pub const CLIENT_COMPOSED_SOURCE: &str = "
MODULE main
VAR
  r : {null, fetch, validate, val, inval};
  cbelief : {valid, suspect, nofile};
ASSIGN
  next(cbelief) :=
    case
      (cbelief = nofile) & (r = val) : valid;
      (cbelief = suspect) & (r = val) : valid;
      (cbelief = suspect) & (r = inval) : nofile;
      1 : cbelief;
    esac;
  next(r) :=
    case
      (cbelief = nofile) & (r = null) : fetch;
      (cbelief = suspect) & (r = null) : validate;
      (cbelief = suspect) & (r = inval) : null;
      1 : r;
    esac;
";

/// Model-check the AFS-1 server (reproduces Figure 7's output).
pub fn verify_server() -> RunOutcome {
    run_source(SERVER_SOURCE).expect("server source is well-formed")
}

/// Model-check the AFS-1 client (reproduces Figure 10's output).
pub fn verify_client() -> RunOutcome {
    run_source(CLIENT_SOURCE).expect("client source is well-formed")
}

/// A vocabulary over the union alphabet (for building formulas that
/// mention both components' variables).
pub fn union_vocabulary() -> ExplicitCompiled {
    let src = "
MODULE main
VAR
  sbelief : {none, invalid, valid};
  r : {null, fetch, validate, val, inval};
  validFile : boolean;
  cbelief : {valid, suspect, nofile};
";
    compile_explicit(&parse_module(src).unwrap()).unwrap()
}

/// The explicit server component (renamed variables).
pub fn server_component() -> ExplicitCompiled {
    compile_explicit(&parse_module(SERVER_COMPOSED_SOURCE).unwrap()).unwrap()
}

/// The explicit client component (renamed variables).
pub fn client_component() -> ExplicitCompiled {
    compile_explicit(&parse_module(CLIENT_COMPOSED_SOURCE).unwrap()).unwrap()
}

/// The assume-guarantee engine over `server ∘ client`.
pub fn engine() -> Engine {
    Engine::new(vec![
        Component::new("server", server_component().system),
        Component::new("client", client_component().system),
    ])
}

/// The initial condition `I` of §4.2:
/// `Server.belief = none ∧ (Client.belief = nofile ∨ suspect) ∧ r = null`.
pub fn initial_condition() -> Formula {
    let v = union_vocabulary();
    v.parse_formula("sbelief = none & (cbelief = nofile | cbelief = suspect) & r = null")
        .unwrap()
}

/// The invariant of §4.2.3:
/// `(Client.belief = valid ⇒ Server.belief = valid) ∧
///  (r = val ⇒ Server.belief = valid)`.
pub fn invariant() -> Formula {
    let v = union_vocabulary();
    v.parse_formula("(cbelief = valid -> sbelief = valid) & (r = val -> sbelief = valid)")
        .unwrap()
}

/// The safety property (Afs1):
/// `AG (Client.belief = valid ⇒ Server.belief = valid)` under `(I, {true})`.
pub fn afs1_safety_formula() -> Formula {
    let v = union_vocabulary();
    v.parse_formula("AG (cbelief = valid -> sbelief = valid)")
        .unwrap()
}

/// The liveness property (Afs2): `AF (Client.belief = valid)`.
pub fn afs2_liveness_formula() -> Formula {
    let v = union_vocabulary();
    v.parse_formula("cbelief = valid").unwrap().af()
}

/// §4.2.3, safety: prove (Afs1) compositionally via the invariant rule.
pub fn prove_afs1_safety() -> Certificate {
    let e = engine();
    e.prove_invariant(&invariant(), &initial_condition(), &[])
        .expect("invariant proof runs")
}

/// The progress pairs `(helpful component, p, q)` whose chaining yields
/// (Afs2). Pairs 1, 3, 4, 6, 7 are client steps; 2 and 5 are server steps
/// (the (Srv5) obligations of the paper).
pub fn progress_pairs() -> Vec<(&'static str, String, String)> {
    vec![
        (
            "client",
            "cbelief = nofile & r = null".into(),
            "r = fetch".into(),
        ),
        ("server", "r = fetch".into(), "r = val".into()),
        (
            "client",
            "cbelief = nofile & r = val".into(),
            "cbelief = valid".into(),
        ),
        (
            "client",
            "cbelief = suspect & r = null".into(),
            "r = validate".into(),
        ),
        (
            "server",
            "sbelief = none & r = validate".into(),
            "r = val | r = inval".into(),
        ),
        (
            "client",
            "cbelief = suspect & r = val".into(),
            "cbelief = valid".into(),
        ),
        (
            "client",
            "cbelief = suspect & r = inval".into(),
            "cbelief = nofile & r = null".into(),
        ),
    ]
}

/// The fairness constraints `{¬pᵢ ∨ qᵢ}` that discard infinite stuttering
/// for every progress pair — the `F` of (Afs2)'s restriction.
pub fn liveness_fairness() -> Vec<Formula> {
    let v = union_vocabulary();
    progress_pairs()
        .into_iter()
        .map(|(_, p, q)| v.parse_formula(&format!("!({p}) | ({q})")).unwrap())
        .collect()
}

/// §4.2.3, liveness: apply Rule 4 to each progress pair on its helpful
/// component, discharge the `AX` obligations compositionally, and chain
/// the resulting `A(p U q)` conclusions into (Afs2). The chaining step is
/// cross-checked monolithically (the paper performs it by hand).
pub fn prove_afs2_liveness() -> Certificate {
    let e = engine();
    let server = server_component();
    let client = client_component();
    let mut cert = Certificate::new("system ⊨_(I, F) AF (Client.belief = valid)  [Afs2]");
    for (who, p_text, q_text) in progress_pairs() {
        let comp = if who == "server" { &server } else { &client };
        // Relativise p to the helpful component's domain-validity predicate:
        // §3.4 identifies the state space with the valid boolean encodings.
        let p = comp
            .parse_formula(&p_text)
            .expect("pair formula over component alphabet")
            .and(comp.validity_formula());
        let q = comp
            .parse_formula(&q_text)
            .expect("pair formula over component alphabet");
        match rule4(&comp.system, &p, &q) {
            Ok(g) => {
                let sub = e.discharge(&g).expect("discharge runs");
                cert.steps.push(cmc_core::Step {
                    description: format!(
                        "Rule 4 on {who}: ({p_text}) ⇒ A(({p_text}) U ({q_text})) under fairness"
                    ),
                    ok: sub.valid,
                    compositional: sub.fully_compositional(),
                    backend: None,
                    duration: None,
                });
                cert.valid &= sub.valid;
            }
            Err(err) => {
                cert.steps.push(cmc_core::Step {
                    description: format!("Rule 4 premise failed on {who}: {err}"),
                    ok: false,
                    compositional: true,
                    backend: None,
                    duration: None,
                });
                cert.valid = false;
            }
        }
    }
    // Final chaining (done by hand in the paper): under I and the union of
    // the fairness constraints, the A(p U q) conclusions compose into
    // AF (cbelief = valid). Cross-checked on the monolithic composition.
    let r = Restriction::new(initial_condition(), liveness_fairness());
    let holds = e
        .monolithic_check(&r, &afs2_liveness_formula())
        .expect("monolithic cross-check runs");
    cert.steps.push(cmc_core::Step {
        description: "chained conclusion AF (cbelief = valid) under (I, F)".into(),
        ok: holds,
        compositional: false,
        backend: None,
        duration: None,
    });
    cert.valid &= holds;
    cert
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::Checker;

    /// E5/E6: every spec of Figures 6 and 9 checks true, as in Figures 7
    /// and 10 of the paper.
    #[test]
    fn figures_7_and_10_all_specs_true() {
        let server = verify_server();
        assert_eq!(server.results.len(), 5, "{:#?}", server.results);
        assert!(server.all_true(), "{}", server.report);
        let client = verify_client();
        assert_eq!(client.results.len(), 6, "{:#?}", client.results);
        assert!(client.all_true(), "{}", client.report);
    }

    /// The reports carry the SMV-style resource trailer.
    #[test]
    fn reports_have_resource_stats() {
        for out in [verify_server(), verify_client()] {
            assert!(out.report.contains("BDD nodes allocated:"));
            assert!(out.report.contains("transition relation:"));
        }
    }

    /// E4 (Figure 4): the server's reachable state graph from the initial
    /// state (none, null) matches the paper's transition diagram.
    #[test]
    fn figure_4_server_state_graph() {
        let server = server_component();
        let v = &server;
        let init = v.parse_formula("sbelief = none & r = null").unwrap();
        let checker = Checker::new(&server.system).unwrap();
        let init_states: Vec<_> = checker.sat(&init).unwrap().iter().collect();
        // validFile free: two initial bit-states.
        assert_eq!(init_states.len(), 2);
        let reachable = server.system.reachable(init_states);
        // Figure 4 server graph: (none,null) -> {(none,fetch) -> (valid,val),
        // (none,validate) -> (valid,val) | (invalid,inval),
        // (invalid,inval) -> (invalid,fetch)?..} — requests appear via the
        // client, which is absent here, so only stutter applies: the server
        // alone never leaves (none, null).
        assert_eq!(reachable.len(), 2);
    }

    /// E4 (Figure 4): in the composed system, the protocol run of Figure 4
    /// exists: (nofile, null) –fetch→ served –val→ client valid.
    #[test]
    fn figure_4_composed_run_exists() {
        let e = engine();
        let composed = e.composed();
        let v = union_vocabulary();
        let checker = Checker::new(&composed).unwrap();
        let start = v
            .parse_formula("sbelief = none & cbelief = nofile & r = null")
            .unwrap();
        let goal = v.parse_formula("cbelief = valid & r = val").unwrap();
        // EF goal from every start state.
        let ef = checker.sat(&goal.ef()).unwrap();
        for s in checker.sat(&start).unwrap().iter() {
            assert!(ef.contains(s), "no run to (valid, val) from a start state");
        }
    }

    /// E7: the compositional safety proof of (Afs1) succeeds and is fully
    /// component-local.
    #[test]
    fn afs1_safety_compositional() {
        let cert = prove_afs1_safety();
        assert!(cert.valid, "{cert}");
        assert!(cert.fully_compositional(), "{cert}");
    }

    /// E7 cross-check: (Afs1) also holds monolithically, and the invariant
    /// indeed implies it.
    #[test]
    fn afs1_safety_monolithic_crosscheck() {
        let e = engine();
        let r = Restriction::with_init(initial_condition());
        assert!(e.monolithic_check(&r, &afs1_safety_formula()).unwrap());
    }

    /// E7: the liveness proof (Afs2) — Rule 4 chain plus monolithic
    /// chaining step.
    #[test]
    fn afs2_liveness_proof() {
        let cert = prove_afs2_liveness();
        assert!(cert.valid, "{cert}");
        // All Rule-4 steps must be compositional; only the final chaining
        // is whole-system.
        let non_comp: Vec<_> = cert.steps.iter().filter(|s| !s.compositional).collect();
        assert_eq!(non_comp.len(), 1, "{cert}");
    }

    /// Liveness genuinely needs the fairness constraints: without them the
    /// composed system can stutter forever.
    #[test]
    fn afs2_liveness_fails_without_fairness() {
        let e = engine();
        let r = Restriction::with_init(initial_condition());
        assert!(!e.monolithic_check(&r, &afs2_liveness_formula()).unwrap());
    }

    /// The safety invariant is genuinely necessary: a *wrong* invariant
    /// (server always valid) is rejected by the engine.
    #[test]
    fn wrong_invariant_rejected() {
        let e = engine();
        let v = union_vocabulary();
        let bad = v.parse_formula("sbelief = valid").unwrap();
        let cert = e.prove_invariant(&bad, &initial_condition(), &[]).unwrap();
        assert!(!cert.valid);
    }

    /// §3.3 applied to the paper's own specs: Srv1–Srv4 and Cli1–Cli3 are
    /// universal (Rule 2 shapes, conjunctions thereof); Srv5, Cli4, Cli5
    /// are existential (Rule 3 shapes).
    #[test]
    fn classification_of_paper_specs() {
        use cmc_core::{classify, PropertyClass};
        use cmc_ctl::Restriction;
        let server = server_component();
        let client = client_component();
        let r = Restriction::trivial();
        let universal_server = [
            "sbelief = valid -> AX sbelief = valid", // Srv1
            "(r = val -> sbelief = valid) -> AX (r = val -> sbelief = valid)", // Srv2
            "(r = null -> AX r = null) & (r = val -> AX r = val) & (r = inval -> AX r = inval)", // Srv3
        ];
        for text in universal_server {
            let f = server.parse_formula(text).unwrap();
            let c = classify(&f, &r).unwrap_or_else(|| panic!("{text} unclassified"));
            assert_eq!(c.class, PropertyClass::Universal, "{text}");
        }
        let existential_client = [
            "((cbelief = nofile & r = null) -> EX (cbelief = nofile & r = fetch)) & \
             ((cbelief = nofile & r = val) -> EX (cbelief = valid & r = val))", // Cli4 lhs
            "(cbelief = suspect & r = null) -> EX (cbelief = suspect & r = validate)", // Cli5 part
        ];
        for text in existential_client {
            let f = client.parse_formula(text).unwrap();
            let c = classify(&f, &r).unwrap_or_else(|| panic!("{text} unclassified"));
            assert_eq!(c.class, PropertyClass::Existential, "{text}");
        }
        // The system-level (Afs1) safety property is NOT directly
        // classifiable — that is exactly why the paper routes it through
        // the invariant rule.
        assert_eq!(classify(&afs1_safety_formula(), &r), None);
    }

    /// Lemma 1 on the case study: server ∘ client ≡ client ∘ server.
    #[test]
    fn composition_commutes_on_afs1() {
        let s = server_component().system;
        let c = client_component().system;
        assert!(cmc_kripke::lemmas::lemma1_commutative(&s, &c));
    }
}
