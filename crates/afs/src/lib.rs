#![warn(missing_docs)]

//! # cmc-afs — the paper's case study: AFS cache-coherence protocols
//!
//! §4 of *An Approach to Compositional Model Checking* verifies the Andrew
//! File System cache-coherence protocols AFS-1 and AFS-2 compositionally.
//! This crate reproduces the whole section:
//!
//! * [`afs1`] — the AFS-1 server and client models and specs (Figures 5,
//!   6, 8, 9), the model-checking outputs (Figures 7, 10), and the
//!   compositional deduction of the safety property (Afs1) and liveness
//!   property (Afs2) from §4.2.3.
//! * [`ideal`] — the IdealisedServer abstraction of the AFS-1 server and
//!   the substitution proof that discharges (Afs1) without ever building
//!   the concrete composition (the refinement layer's case study).
//! * [`afs2`] — the AFS-2 models with callbacks, updates, failures and
//!   transmission delay (Figures 11–17), parameterised by the number of
//!   clients `n`, with the invariant proof of §4.3.4 and the scaling
//!   experiment behind the Discussion's linear-vs-exponential claim.

pub mod abp;
pub mod afs1;
pub mod afs2;
pub mod ideal;
