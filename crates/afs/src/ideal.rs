//! The **IdealisedServer** abstraction of the AFS-1 server, and the
//! substitution proof that discharges (Afs1) through it.
//!
//! The concrete AFS-1 server of §4.2 carries a private `validFile` bit —
//! the ground truth about the file — which determines whether a
//! `validate` request comes back `val` or `inval`. For the safety
//! property (Afs1) that determinism is irrelevant: all that matters is
//! the *guarantee* that whenever the server answers `val` its own belief
//! is `valid`. The idealised server forgets `validFile` entirely, turning
//! the validate branch into a nondeterministic choice between
//! `(valid, val)` and `(invalid, inval)` — fewer propositions, more
//! behaviours, same guarantee. This is the IdealisedChannel/IdealisedAlt
//! pattern: verify the concrete component against a small abstract one
//! once, then check the composition of abstractions.
//!
//! The refinement layer makes the pattern a deduction rule
//! ([`Engine::prove_substituted`]): it checks the simulation premise
//! `Server ⊑ IdealisedServer`, enforces the soundness side conditions
//! (the abstraction drops only *private* propositions, the property is
//! universal and within the abstract vocabulary), and checks (Afs1) on
//! `IdealisedServer ∘ Client` — never building the concrete composition.
//!
//! [`scaled_server`] widens the gap: a server tracking `extra`
//! independent private cache-line bits grows the concrete composition by
//! `2^extra` states, while the idealised side is *unchanged* — one
//! five-proposition abstraction closes every member of the family. The
//! `refinement_substitution` bench measures the separation.

use cmc_core::engine::{Certificate, Component, Engine, Substitution};
use cmc_ctl::Restriction;
use cmc_kripke::{Alphabet, System};

use crate::afs1::{afs1_safety_formula, client_component, initial_condition, server_component};

/// The private proposition the idealisation forgets: the server's
/// ground-truth `validFile` bit (a boolean variable compiles to a single
/// bit carrying the variable's own name).
pub const PRIVATE_BIT: &str = "validFile";

/// The idealised AFS-1 server: the concrete server projected onto its
/// alphabet minus [`PRIVATE_BIT`]. Projection only ever *adds* behaviour
/// (`M ⊑ M.project(..)` always holds — and the engine re-checks it
/// rather than assuming it), so any universal property of the idealised
/// composition holds of the concrete one.
pub fn idealised_server() -> System {
    let server = server_component().system;
    let keep: Vec<String> = server
        .alphabet()
        .names()
        .iter()
        .filter(|n| n.as_str() != PRIVATE_BIT)
        .cloned()
        .collect();
    server.project(&Alphabet::new(keep))
}

/// The substitution `Server ↦ IdealisedServer` (component 0 of
/// [`crate::afs1::engine`]).
pub fn idealised_substitution() -> Substitution {
    Substitution::new(0, idealised_server())
}

/// Prove (Afs1) — `AG (Client.belief = valid → Server.belief = valid)`
/// under the initial condition `I` — by abstraction substitution:
/// `Server ⊑ IdealisedServer`, then the property on
/// `IdealisedServer ∘ Client`. The returned certificate records the
/// content-addressed abstraction, so `cmc-testkit::validate` can replay
/// both the simulation and the abstract-side check from the certificate
/// alone.
pub fn prove_afs1_substituted() -> Certificate {
    crate::afs1::engine()
        .prove_substituted(
            &idealised_substitution(),
            &Restriction::with_init(initial_condition()),
            &afs1_safety_formula(),
        )
        .expect("the AFS-1 substitution satisfies every side condition")
}

/// The AFS-1 server scaled with `extra` private cache-line bits
/// (`cache0`, `cache1`, …): each is frozen ground truth like
/// `validFile`, so the concrete state space grows by `2^extra` while the
/// observable protocol — and therefore the idealised server — is
/// unchanged.
pub fn scaled_server(extra: usize) -> System {
    let names: Vec<String> = (0..extra).map(|i| format!("cache{i}")).collect();
    server_component().system.expand(&Alphabet::new(names))
}

/// The assume-guarantee engine over `scaled_server(extra) ∘ client`.
pub fn scaled_engine(extra: usize) -> Engine {
    Engine::new(vec![
        Component::new("server", scaled_server(extra)),
        Component::new("client", client_component().system),
    ])
}

/// Prove (Afs1) for the scaled family by substituting the *same*
/// idealised server: the simulation premise stays local to the server
/// and the conclusion is checked on the fixed five-proposition
/// `IdealisedServer ∘ Client` — the cost of the abstract side does not
/// grow with `extra`.
pub fn prove_afs1_scaled(extra: usize) -> Certificate {
    scaled_engine(extra)
        .prove_substituted(
            &idealised_substitution(),
            &Restriction::with_init(initial_condition()),
            &afs1_safety_formula(),
        )
        .expect("the scaled AFS-1 substitution satisfies every side condition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_core::check_refines;
    use cmc_core::BackendChoice;

    #[test]
    fn idealised_server_forgets_only_the_private_bit() {
        let server = server_component().system;
        let ideal = idealised_server();
        assert_eq!(ideal.alphabet().len(), server.alphabet().len() - 1);
        assert!(!ideal.alphabet().contains(PRIVATE_BIT));
        assert!(ideal
            .alphabet()
            .names()
            .iter()
            .all(|n| server.alphabet().contains(n)));
        // The validate branch became a genuine nondeterministic choice:
        // the idealisation has proper transitions the projection folded,
        // but never *fewer* behaviours than the concrete server.
        let (outcome, _) = check_refines(BackendChoice::Auto, &server, &ideal)
            .expect("simulation fits the explicit budget");
        assert!(outcome.holds(), "Server ⊑ IdealisedServer must hold");
    }

    #[test]
    fn afs1_closes_through_the_idealised_server() {
        let cert = prove_afs1_substituted();
        assert!(cert.valid, "substitution proof failed:\n{cert}");
        assert_eq!(
            cert.abstractions.len(),
            1,
            "the certificate records exactly the idealised-server substitution"
        );
        let rec = &cert.abstractions[0];
        assert_eq!(rec.component, "server");
        assert!(!rec.abstraction.alphabet().contains(PRIVATE_BIT));
        // The recorded substitution replays from the certificate alone.
        assert!(cmc_testkit::replay_substitution(rec).expect("replay runs"));
    }

    #[test]
    fn scaled_family_closes_through_the_same_abstraction() {
        // Four extra cache lines: 16× the concrete server states, same
        // idealised side.
        let cert = prove_afs1_scaled(4);
        assert!(cert.valid, "scaled substitution proof failed:\n{cert}");
        let rec = &cert.abstractions[0];
        assert_eq!(
            rec.abstraction_key,
            prove_afs1_substituted().abstractions[0].abstraction_key,
            "every member of the scaled family shares one content-addressed abstraction"
        );
        // Cross-check against the monolithic composition at this width.
        assert!(scaled_engine(4)
            .monolithic_check(
                &Restriction::with_init(initial_condition()),
                &afs1_safety_formula()
            )
            .expect("monolithic check fits at extra = 4"));
    }
}
