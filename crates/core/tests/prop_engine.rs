//! Engine-level soundness: whatever the proof engine *establishes*
//! compositionally must be true of the monolithic composition. (The
//! converse — completeness — is not expected: compositional methods are
//! deliberately incomplete.)

use cmc_core::engine::{Component, Engine};
use cmc_ctl::{Formula, Restriction};
use cmc_kripke::{Alphabet, State, System};
use proptest::prelude::*;

fn arb_system(names: &'static [&'static str]) -> impl Strategy<Value = System> {
    let n = names.len();
    let max = 1u32 << n;
    proptest::collection::vec((0..max, 0..max), 0..10).prop_map(move |pairs| {
        let mut m = System::new(Alphabet::new(names.iter().copied()));
        for (s, t) in pairs {
            m.add_transition(State(s as u128), State(t as u128));
        }
        m
    })
}

fn arb_prop(names: &'static [&'static str]) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        proptest::sample::select(names.to_vec()).prop_map(Formula::ap),
    ];
    leaf.prop_recursive(2, 10, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

fn engine2(a: System, b: System) -> Engine {
    Engine::new(vec![Component::new("a", a), Component::new("b", b)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// prove() soundness for Rule-2 shapes over the union alphabet
    /// (propositions may be private to either component).
    #[test]
    fn prove_universal_sound(
        a in arb_system(&["p", "q"]),
        b in arb_system(&["q", "r"]),
        p in arb_prop(&["p", "q", "r"]),
        qf in arb_prop(&["p", "q", "r"]),
    ) {
        let f = p.clone().implies(qf.clone().ax());
        let e = engine2(a, b);
        let r = Restriction::trivial();
        let cert = e.prove(&r, &f).unwrap();
        if cert.valid && cert.fully_compositional() {
            prop_assert!(
                e.monolithic_check(&r, &f).unwrap(),
                "engine established {f} but the monolith refutes it\n{cert}"
            );
        }
    }

    /// prove() soundness for existential shapes.
    #[test]
    fn prove_existential_sound(
        a in arb_system(&["p", "q"]),
        b in arb_system(&["q", "r"]),
        p in arb_prop(&["p", "q", "r"]),
        qf in arb_prop(&["p", "q", "r"]),
        shape in 0..3,
    ) {
        let f = match shape {
            0 => p.clone().implies(qf.clone().ex()),
            1 => p.clone().and(qf.clone()).ef(),
            _ => p.clone().eu(qf.clone()),
        };
        let e = engine2(a, b);
        let r = Restriction::trivial();
        let cert = e.prove(&r, &f).unwrap();
        if cert.valid {
            prop_assert!(
                e.monolithic_check(&r, &f).unwrap(),
                "engine established {f} but the monolith refutes it\n{cert}"
            );
        }
    }

    /// prove_invariant() soundness: an established AG Inv must hold
    /// monolithically under the same restriction — across all three
    /// hypothesis-escalation levels.
    #[test]
    fn prove_invariant_sound(
        a in arb_system(&["p", "q"]),
        b in arb_system(&["q", "r"]),
        inv in arb_prop(&["p", "q", "r"]),
        init in arb_prop(&["p", "q", "r"]),
    ) {
        let e = engine2(a, b);
        let cert = e.prove_invariant(&inv, &init, &[]).unwrap();
        if cert.valid {
            let r = Restriction::with_init(init.clone());
            prop_assert!(
                e.monolithic_check(&r, &inv.clone().ag()).unwrap(),
                "engine established AG {inv} from {init} but the monolith refutes it\n{cert}"
            );
        }
    }
}
