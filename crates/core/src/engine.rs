//! The assume-guarantee proof engine.
//!
//! Reproduces, as an executable procedure, the deduction style of §4.2.3
//! and §4.3.4 of the paper: component properties are established by model
//! checking (on the component's *expansion* over the composed alphabet,
//! justified by Lemmas 5, 8, 9), classified as universal or existential
//! (Rules 1–3), and transferred to the composed system; guarantees
//! properties (Rules 4, 5) are discharged by proving their left-hand
//! obligations on the system, compositionally where possible.
//!
//! Every deduction produces a [`Certificate`] recording each step, so a
//! component consumer can audit the proof — the paper's stated goal is
//! exactly this workflow: "the developer of a component take\[s\] a greater
//! part in proving correctness" and ships the proof with the component.

use crate::backend::{check_refines, check_routed, BackendChoice, BackendKind, Target};
use crate::property::{classify, PropertyClass};
use crate::rules::{
    circular_refines, invariant_obligations, substitution_side_conditions, Guarantee,
    RefinementError, RuleError,
};
use cmc_ctl::{Formula, Restriction};
use cmc_kripke::{Alphabet, System};
use cmc_store::{
    CertStore, Entry, ObligationKey, StoredCertificate, StoredStep, StoredSubstitution,
};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A named component in a composition.
#[derive(Debug, Clone)]
pub struct Component {
    /// Display name (e.g. `"server"`).
    pub name: String,
    /// The component system.
    pub system: System,
}

impl Component {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, system: System) -> Self {
        Component {
            name: name.into(),
            system,
        }
    }
}

/// One step in a proof certificate.
#[derive(Debug, Clone)]
pub struct Step {
    /// What was established (or attempted).
    pub description: String,
    /// Did the step succeed?
    pub ok: bool,
    /// Was this step compositional (component-local) or a whole-system
    /// fallback check?
    pub compositional: bool,
    /// The backend that discharged this step's obligation (`None` for
    /// pure deduction steps that ran no checker).
    pub backend: Option<BackendKind>,
    /// Wall-clock time of the check behind this step (`None` for
    /// deduction steps and store-replayed results).
    pub duration: Option<Duration>,
}

/// Equality deliberately ignores `duration`: re-running a deduction must
/// produce a certificate *equal* to the stored one even though timings
/// differ run to run.
impl PartialEq for Step {
    fn eq(&self, other: &Self) -> bool {
        self.description == other.description
            && self.ok == other.ok
            && self.compositional == other.compositional
            && self.backend == other.backend
    }
}

impl Eq for Step {}

impl Step {
    /// Was this step replayed from a certificate store rather than
    /// checked fresh? Cached steps carry the engine's `"(cached)"` marker
    /// and no timing.
    pub fn cached(&self) -> bool {
        self.duration.is_none() && self.description.ends_with("(cached)")
    }
}

/// An auditable record of a deduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The property being established, rendered.
    pub goal: String,
    /// The steps, in order.
    pub steps: Vec<Step>,
    /// Overall verdict.
    pub valid: bool,
    /// Abstraction substitutions this deduction leaned on — everything a
    /// replay validator needs to re-establish each substitution from the
    /// certificate alone (empty for ordinary deductions).
    pub abstractions: Vec<StoredSubstitution>,
}

impl Certificate {
    /// An empty valid certificate for `goal` — steps fold into the
    /// verdict as they are appended.
    pub fn new(goal: impl Into<String>) -> Self {
        Certificate {
            goal: goal.into(),
            steps: vec![],
            valid: true,
            abstractions: vec![],
        }
    }

    /// Append a step and fold its outcome into the verdict. Public so
    /// that case studies can assemble composite certificates (e.g. a
    /// Rule-4 chain plus a hand-chained conclusion).
    pub fn step(&mut self, description: impl Into<String>, ok: bool, compositional: bool) {
        self.steps.push(Step {
            description: description.into(),
            ok,
            compositional,
            backend: None,
            duration: None,
        });
        self.valid &= ok;
    }

    /// Append a step discharged by a checking backend, recording which
    /// engine answered it and (for fresh checks) its wall-clock time.
    pub fn step_checked(
        &mut self,
        description: impl Into<String>,
        ok: bool,
        compositional: bool,
        backend: BackendKind,
        duration: Option<Duration>,
    ) {
        self.steps.push(Step {
            description: description.into(),
            ok,
            compositional,
            backend: Some(backend),
            duration,
        });
        self.valid &= ok;
    }

    /// Were all steps component-local (no whole-system model checking)?
    pub fn fully_compositional(&self) -> bool {
        self.steps.iter().all(|s| s.compositional)
    }

    /// The steps that were discharged by a checking backend (as opposed
    /// to pure deduction), for replay validators and audits.
    pub fn checked_steps(&self) -> impl Iterator<Item = &Step> {
        self.steps.iter().filter(|s| s.backend.is_some())
    }

    /// The distinct engines that contributed to this certificate, in
    /// first-use order.
    pub fn backends_used(&self) -> Vec<BackendKind> {
        let mut out = Vec::new();
        for s in &self.steps {
            if let Some(b) = s.backend {
                if !out.contains(&b) {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Does the `valid` flag agree with the conjunction of step outcomes?
    /// The engine maintains this invariant; replay validators re-check it
    /// on certificates that crossed a serialisation boundary.
    pub fn is_consistent(&self) -> bool {
        self.valid == self.steps.iter().all(|s| s.ok)
    }
}

impl From<&Certificate> for StoredCertificate {
    fn from(cert: &Certificate) -> Self {
        StoredCertificate {
            goal: cert.goal.clone(),
            steps: cert
                .steps
                .iter()
                .map(|s| StoredStep {
                    description: s.description.clone(),
                    ok: s.ok,
                    compositional: s.compositional,
                    backend: s.backend.map(|b| b.name().to_string()),
                })
                .collect(),
            valid: cert.valid,
            abstractions: cert.abstractions.clone(),
        }
    }
}

impl From<StoredCertificate> for Certificate {
    fn from(cert: StoredCertificate) -> Self {
        Certificate {
            goal: cert.goal,
            steps: cert
                .steps
                .into_iter()
                .map(|s| Step {
                    description: s.description,
                    ok: s.ok,
                    compositional: s.compositional,
                    backend: s.backend.as_deref().and_then(BackendKind::from_name),
                    duration: None,
                })
                .collect(),
            valid: cert.valid,
            abstractions: cert.abstractions,
        }
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "goal: {}", self.goal)?;
        for s in &self.steps {
            write!(
                f,
                "  [{}] {}",
                if s.ok { "ok" } else { "FAIL" },
                s.description
            )?;
            if !s.compositional {
                write!(f, " (whole-system check)")?;
            }
            if let Some(backend) = s.backend {
                write!(f, " [{backend}")?;
                if let Some(d) = s.duration {
                    write!(f, " {d:.1?}")?;
                }
                write!(f, "]")?;
            }
            writeln!(f)?;
        }
        for sub in &self.abstractions {
            writeln!(
                f,
                "  [abstraction] {} ⊑ {} ({} → {} propositions)",
                sub.component,
                &sub.abstraction_key[..8],
                sub.concrete.alphabet().len(),
                sub.abstraction.alphabet().len(),
            )?;
        }
        writeln!(
            f,
            "verdict: {}",
            if self.valid {
                "established"
            } else {
                "NOT established"
            }
        )
    }
}

/// Engine errors.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// Explicit model checking failed.
    Check(String),
    /// A rule application failed.
    Rule(RuleError),
    /// A refinement side condition was violated — the requested
    /// substitution or circular discharge would be unsound, so the engine
    /// refuses it outright rather than produce a wrong verdict.
    Refinement(RefinementError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Check(m) => write!(f, "{m}"),
            EngineError::Rule(e) => write!(f, "{e}"),
            EngineError::Refinement(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RuleError> for EngineError {
    fn from(e: RuleError) -> Self {
        EngineError::Rule(e)
    }
}

impl From<RefinementError> for EngineError {
    fn from(e: RefinementError) -> Self {
        EngineError::Refinement(e)
    }
}

/// A request to stand an abstraction in for one component of the
/// engine's composition.
#[derive(Debug, Clone)]
pub struct Substitution {
    /// Index of the component being abstracted.
    pub component: usize,
    /// The abstract system to substitute (its alphabet must be a subset
    /// of the concrete component's).
    pub abstraction: System,
}

impl Substitution {
    /// Convenience constructor.
    pub fn new(component: usize, abstraction: System) -> Self {
        Substitution {
            component,
            abstraction,
        }
    }
}

/// The assume-guarantee engine for a fixed set of components.
pub struct Engine {
    components: Vec<Component>,
    union: Alphabet,
    store: Option<Arc<CertStore>>,
    backend: BackendChoice,
}

impl Engine {
    /// Build an engine over the given components. The backend policy
    /// defaults to [`BackendChoice::Auto`]: explicit-state while a check's
    /// target fits under the explicit limit, symbolic beyond it.
    pub fn new(components: Vec<Component>) -> Self {
        let union = components
            .iter()
            .fold(Alphabet::empty(), |acc, c| acc.union(c.system.alphabet()));
        Engine {
            components,
            union,
            store: None,
            backend: BackendChoice::Auto,
        }
    }

    /// Select the backend policy for every check this engine runs.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Replace the backend policy (see [`Engine::with_backend`]).
    pub fn set_backend(&mut self, backend: BackendChoice) {
        self.backend = backend;
    }

    /// The engine's backend policy.
    pub fn backend(&self) -> BackendChoice {
        self.backend
    }

    /// Attach a certificate store: every obligation is looked up before
    /// being checked and memoized after, so components shared between
    /// compositions (or repeated proofs over the same engine) are verified
    /// once. The store is keyed structurally — see
    /// [`cmc_store::ObligationKey`] — so it can safely be shared across
    /// engines via `Arc`.
    pub fn with_store(mut self, store: Arc<CertStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attach or replace the certificate store (see [`Engine::with_store`]).
    pub fn set_store(&mut self, store: Arc<CertStore>) {
        self.store = Some(store);
    }

    /// The attached certificate store, if any.
    pub fn store(&self) -> Option<&Arc<CertStore>> {
        self.store.as_ref()
    }

    /// The union alphabet `Σ*` of all components.
    pub fn union_alphabet(&self) -> &Alphabet {
        &self.union
    }

    /// The components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The monolithic composition `M₁ ∘ M₂ ∘ …` (exponential; used for
    /// cross-validation and as a fallback for unclassifiable properties).
    pub fn composed(&self) -> System {
        let mut it = self.components.iter();
        let first = it.next().expect("engine needs at least one component");
        it.fold(first.system.clone(), |acc, c| acc.compose(&c.system))
    }

    /// The *minimal expansion* of component `i` for checking a formula
    /// with proposition set `props`: the component expanded over only the
    /// propositions it is missing (Lemma 5 makes this equivalent to the
    /// full-union expansion for formulas in `C(Σᵢ ∪ props)` — and it is
    /// exponentially cheaper when obligations are local, which is what
    /// makes the Discussion's linear-in-components claim real).
    ///
    /// Returned as a lazy [`Target`] so the backend decides how to realise
    /// the expansion: the explicit engine pads frames, the symbolic engine
    /// just declares frozen variables.
    fn minimal_target(&self, i: usize, props: &std::collections::BTreeSet<String>) -> Target {
        let own = self.components[i].system.alphabet();
        let extra: Vec<String> = props.iter().filter(|p| !own.contains(p)).cloned().collect();
        for p in &extra {
            assert!(
                self.union.contains(p),
                "formula proposition {p:?} unknown to every component"
            );
        }
        if extra.is_empty() {
            Target::system(self.components[i].system.clone())
        } else {
            Target::expansion(self.components[i].system.clone(), Alphabet::new(extra))
        }
    }

    /// The whole composition as a lazy [`Target`].
    fn composition_target(&self) -> Target {
        Target::composition(self.components.iter().map(|c| c.system.clone()).collect())
    }

    /// Store key for `target ⊨_r f` under proof `mode` and a resolved
    /// backend, built from the component systems (never a materialised
    /// product). An expansion's extra alphabet is keyed as the identity
    /// system over it — which is exactly what the expansion *is* (§3.2).
    fn target_key(
        &self,
        mode: &str,
        target: &Target,
        r: &Restriction,
        f: &Formula,
        kind: BackendKind,
    ) -> ObligationKey {
        let identity;
        let mut refs: Vec<&System> = target.systems().iter().collect();
        if !target.extra().is_empty() {
            identity = System::identity(target.extra().clone());
            refs.push(&identity);
        }
        ObligationKey::composed(mode, kind.name(), &refs, r, f)
    }

    /// Flatten top-level conjunctions.
    fn conjuncts(f: &Formula) -> Vec<Formula> {
        match f {
            Formula::And(a, b) => {
                let mut out = Self::conjuncts(a);
                out.extend(Self::conjuncts(b));
                out
            }
            other => vec![other.clone()],
        }
    }

    /// Check a universal obligation on every component, conjunct-wise with
    /// minimal expansions, in parallel. Appends one step per (conjunct,
    /// component) check. With a store attached, obligations answered from
    /// the store never reach the checker; only the misses are fanned out.
    fn check_universal(&self, f: &Formula, cert: &mut Certificate) -> Result<(), EngineError> {
        // One slot per (conjunct, component) obligation, in order; cache
        // hits are resolved immediately, misses carry their store key.
        let trivial = Restriction::trivial();
        let mut slots: Vec<(String, Option<ObligationKey>, BackendKind, Option<bool>)> = Vec::new();
        let mut misses: Vec<(String, Target, Formula)> = Vec::new();
        for conjunct in Self::conjuncts(f) {
            let props = conjunct.atomic_props();
            for (i, comp) in self.components.iter().enumerate() {
                let name = format!("minimal expansion of {} ⊨ {conjunct}", comp.name);
                let target = self.minimal_target(i, &props);
                let kind = self.backend.route(&target, &trivial).planned;
                let key = self
                    .store
                    .as_ref()
                    .map(|_| self.target_key("check", &target, &trivial, &conjunct, kind));
                let cached = match (&self.store, key) {
                    (Some(store), Some(key)) => store.lookup(&key).map(|e| e.verdict),
                    _ => None,
                };
                if cached.is_none() {
                    misses.push((name.clone(), target, conjunct.clone()));
                }
                slots.push((name, key, kind, cached));
            }
        }
        let mut fresh = crate::parallel::check_targets_parallel(&misses, self.backend).into_iter();
        for (name, key, kind, cached) in slots {
            match cached {
                Some(ok) => cert.step_checked(format!("{name} (cached)"), ok, true, kind, None),
                None => {
                    let (_, outcome) = fresh.next().expect("one parallel result per miss");
                    let verdict = outcome.map_err(EngineError::Check)?;
                    if let (Some(store), Some(key)) = (&self.store, key) {
                        store.insert(key, Entry::verdict(verdict.holds));
                    }
                    cert.step_checked(
                        name,
                        verdict.holds,
                        true,
                        verdict.stats.backend,
                        Some(verdict.stats.duration),
                    );
                }
            }
        }
        Ok(())
    }

    /// `target ⊨_r f` through the selected backend, answered from the
    /// store when possible. Returns `(verdict, was_hit, backend,
    /// duration-of-fresh-check)`.
    fn cached_target_check(
        &self,
        target: &Target,
        r: &Restriction,
        f: &Formula,
    ) -> Result<(bool, bool, BackendKind, Option<Duration>), EngineError> {
        // The store key carries the *planned* engine (deterministic across
        // runs); the recorded backend is whatever actually answered, which
        // differs only when Auto's explicit attempt fell back.
        let kind = self.backend.route(target, r).planned;
        let duration = std::cell::Cell::new(None);
        let actual = std::cell::Cell::new(None);
        let run = || -> Result<bool, EngineError> {
            let v = check_routed(self.backend, target, r, f)
                .map_err(|e| EngineError::Check(e.to_string()))?;
            duration.set(Some(v.stats.duration));
            actual.set(Some(v.stats.backend));
            Ok(v.holds)
        };
        match &self.store {
            Some(store) => {
                let key = self.target_key("check", target, r, f, kind);
                let (entry, hit) = store.get_or_check(key, || run().map(Entry::verdict))?;
                Ok((
                    entry.verdict,
                    hit,
                    actual.get().unwrap_or(kind),
                    duration.get(),
                ))
            }
            None => Ok((run()?, false, actual.get().unwrap_or(kind), duration.get())),
        }
    }

    /// `⊨ f` in every state of `target` — a trivially restricted check.
    fn cached_holds_everywhere(
        &self,
        target: &Target,
        f: &Formula,
    ) -> Result<(bool, bool, BackendKind, Option<Duration>), EngineError> {
        self.cached_target_check(target, &Restriction::trivial(), f)
    }

    /// Suffix a step description with the cache marker when `hit`.
    fn mark(description: String, hit: bool) -> String {
        if hit {
            format!("{description} (cached)")
        } else {
            description
        }
    }

    /// The store key for a whole-composition obligation under proof
    /// `mode`, built from the component systems (never the exponential
    /// composition itself).
    fn composition_key(&self, mode: &str, r: &Restriction, f: &Formula) -> ObligationKey {
        let systems: Vec<&System> = self.components.iter().map(|c| &c.system).collect();
        ObligationKey::composed(mode, self.backend.tag(), &systems, r, f)
    }

    /// Memoize a whole deduction: return the stored certificate for `key`
    /// if present, otherwise run `deduce` and store its certificate. A
    /// stored certificate is returned verbatim — byte-for-byte the
    /// certificate the original deduction produced.
    fn cached_deduction(
        &self,
        key: ObligationKey,
        deduce: impl FnOnce() -> Result<Certificate, EngineError>,
    ) -> Result<Certificate, EngineError> {
        let Some(store) = &self.store else {
            return deduce();
        };
        if let Some(entry) = store.lookup(&key) {
            if let Some(cert) = entry.certificate {
                return Ok(cert.into());
            }
        }
        let cert = deduce()?;
        store.insert(key, Entry::with_certificate(cert.valid, (&cert).into()));
        Ok(cert)
    }

    /// Prove `⊨_r f` of the composition, compositionally where the rules
    /// allow, with a whole-system fallback otherwise.
    ///
    /// With a store attached the memoization is two-level: the whole
    /// deduction is keyed on (components, r, f) and replayed verbatim on a
    /// repeat proof, and each component-level obligation inside a fresh
    /// deduction is keyed individually — so a *different* composition
    /// sharing a component still reuses that component's checks (its
    /// steps are marked `(cached)`).
    pub fn prove(&self, r: &Restriction, f: &Formula) -> Result<Certificate, EngineError> {
        self.cached_deduction(self.composition_key("prove", r, f), || {
            self.prove_uncached(r, f)
        })
    }

    fn prove_uncached(&self, r: &Restriction, f: &Formula) -> Result<Certificate, EngineError> {
        let mut cert = Certificate::new(format!("system ⊨_{r} {f}"));
        match classify(f, r) {
            Some(c) if c.class == PropertyClass::Universal => {
                cert.step(
                    format!("{f} classified universal by {:?}", c.rule),
                    true,
                    true,
                );
                self.check_universal(f, &mut cert)?;
                if cert.valid {
                    cert.step(
                        "universal property transfers to the composition (Rule 2)",
                        true,
                        true,
                    );
                }
            }
            Some(c) => {
                cert.step(
                    format!("{f} classified existential by {:?}", c.rule),
                    true,
                    true,
                );
                // The expansion must also cover the restriction's
                // propositions, or the component checker cannot evaluate
                // `I` and `F`.
                let mut props = f.atomic_props();
                props.extend(r.init.atomic_props());
                for c in &r.fairness {
                    props.extend(c.atomic_props());
                }
                let mut found = false;
                for (i, comp) in self.components.iter().enumerate() {
                    let target = self.minimal_target(i, &props);
                    let (holds, hit, kind, duration) = self.cached_target_check(&target, r, f)?;
                    if holds {
                        cert.step_checked(
                            Self::mark(
                                format!("minimal expansion of {} ⊨_{r} {f}", comp.name),
                                hit,
                            ),
                            true,
                            true,
                            kind,
                            duration,
                        );
                        cert.step(
                            "existential property transfers to the composition (Rules 1/3)",
                            true,
                            true,
                        );
                        found = true;
                        break;
                    }
                }
                if !found {
                    // Transfer-from-one-component is sufficient, not
                    // necessary: the property may still hold through the
                    // components' interaction. Fall back to the monolith.
                    cert.step(
                        "no single component establishes the existential property;                          falling back to whole-system check",
                        true,
                        false,
                    );
                    let target = self.composition_target();
                    let (holds, hit, kind, duration) = self.cached_target_check(&target, r, f)?;
                    cert.step_checked(
                        Self::mark(format!("composition ⊨_{r} {f}"), hit),
                        holds,
                        false,
                        kind,
                        duration,
                    );
                }
            }
            None => {
                cert.step(
                    format!(
                        "{f} not classifiable by Rules 1-3; falling back to whole-system check"
                    ),
                    true,
                    false,
                );
                let target = self.composition_target();
                let (holds, hit, kind, duration) = self.cached_target_check(&target, r, f)?;
                cert.step_checked(
                    Self::mark(format!("composition ⊨_{r} {f}"), hit),
                    holds,
                    false,
                    kind,
                    duration,
                );
            }
        }
        Ok(cert)
    }

    /// Prove `⊨_(I,F) AG Inv` via the invariant rule of §4.2.3: `Inv` must
    /// be propositional, `I ⇒ Inv` valid, and `Inv ⇒ AX Inv` universal.
    ///
    /// The invariant is split into prop-connected **clusters**, and each
    /// cluster `K` is checked per component with an escalating hypothesis:
    ///
    /// 1. `K ⇒ AX K` over the component's minimal expansion (local
    ///    induction — cost proportional to the cluster footprint),
    /// 2. `H ⇒ AX K` where `H` adds the invariant conjuncts whose
    ///    propositions touch the component's alphabet or the cluster
    ///    (bounded mutual induction — still local),
    /// 3. `Inv ⇒ AX K` (full mutual induction, the §4.2.3 form).
    ///
    /// Every level implies the universal property `Inv ⇒ AX K` on that
    /// component (`Inv ⇒ K` and `Inv ⇒ H` propositionally), so Rule 2
    /// transfers `Inv ⇒ AX Inv` to the composition whenever each
    /// (cluster, component) pair passes at *some* level. The certificate
    /// records the level used — linear verification cost in the number of
    /// components is achieved exactly when level 3 is never needed.
    pub fn prove_invariant(
        &self,
        inv: &Formula,
        init: &Formula,
        fairness: &[Formula],
    ) -> Result<Certificate, EngineError> {
        let r = Restriction::new(init.clone(), fairness.iter().cloned());
        self.cached_deduction(self.composition_key("invariant", &r, inv), || {
            self.prove_invariant_uncached(inv, init, fairness)
        })
    }

    fn prove_invariant_uncached(
        &self,
        inv: &Formula,
        init: &Formula,
        fairness: &[Formula],
    ) -> Result<Certificate, EngineError> {
        let (_universal, validity) = invariant_obligations(inv, init)?;
        let r = Restriction::new(init.clone(), fairness.iter().cloned());
        let mut cert = Certificate::new(format!("system ⊨_{r} AG ({inv})"));
        // I ⇒ Inv: a propositional validity over the mentioned props.
        let mut validity_props = validity.atomic_props();
        if validity_props.is_empty() {
            validity_props.insert(
                self.union
                    .names()
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "p".into()),
            );
        }
        let validity_alphabet = Alphabet::new(validity_props.into_iter().collect::<Vec<_>>());
        let valid_init = crate::parallel::propositional_validity(&validity_alphabet, &validity);
        cert.step(format!("validity of {validity}"), valid_init, true);

        // Each conjunct is its own obligation unit `K`; the hypothesis
        // escalation below supplies whatever neighbouring conjuncts the
        // induction needs. (Grouping conjuncts into prop-connected
        // clusters first would be sound too, but transitive sharing can
        // chain every conjunct into one global cluster — e.g. the pairwise
        // mutual-exclusion invariant of a token ring — destroying the
        // locality this method exists to exploit.)
        let conjuncts = Self::conjuncts(inv);
        // Fan the (conjunct, component) obligation grid out over the
        // bounded scheduler: every pair is independent (the ladder only
        // reads `self` and the shared store), so a 30-component proof
        // keeps all cores busy with exactly `available_parallelism`
        // workers. Results come back in grid order, so the certificate
        // below is byte-identical to the sequential one.
        let pairs: Vec<(usize, usize)> = (0..conjuncts.len())
            .flat_map(|ki| (0..self.components.len()).map(move |i| (ki, i)))
            .collect();
        let outcomes = crate::scheduler::run(pairs.len(), |p| {
            let (ki, i) = pairs[p];
            let k = &conjuncts[ki];
            self.check_cluster_on_component(i, &conjuncts, inv, k, &k.atomic_props())
        });
        let mut outcomes = outcomes.into_iter();
        for k in &conjuncts {
            for comp in self.components.iter() {
                let level = outcomes
                    .next()
                    .expect("one outcome per (conjunct, component) pair")
                    .map_err(EngineError::Check)??;
                match level {
                    Some((level, kind)) => cert.step_checked(
                        format!(
                            "{}: Inv ⇒ AX ({k}) via {}",
                            comp.name,
                            match level {
                                1 => "local induction (K ⇒ AX K)",
                                2 => "neighbourhood mutual induction",
                                _ => "full mutual induction (Inv ⇒ AX K)",
                            }
                        ),
                        true,
                        true,
                        kind,
                        None,
                    ),
                    None => cert.step(
                        format!(
                            "{}: Inv ⇒ AX ({k}) FAILS at every hypothesis level",
                            comp.name
                        ),
                        false,
                        true,
                    ),
                }
            }
        }
        if cert.valid {
            cert.step(
                "invariant rule: I ⇒ Inv and Inv ⇒ AX Inv (universal) give AG Inv under r",
                true,
                true,
            );
        }
        Ok(cert)
    }

    /// Try the three hypothesis levels for cluster `k` on component `i`;
    /// returns the first level that passes.
    fn check_cluster_on_component(
        &self,
        i: usize,
        conjuncts: &[Formula],
        inv: &Formula,
        k: &Formula,
        k_props: &std::collections::BTreeSet<String>,
    ) -> Result<Option<(u8, BackendKind)>, EngineError> {
        let check = |target: &Target, f: &Formula| -> Result<(bool, BackendKind), EngineError> {
            self.cached_holds_everywhere(target, f)
                .map(|(holds, _, kind, _)| (holds, kind))
        };
        // Level 1: local induction.
        let local = k.clone().implies(k.clone().ax());
        let t1 = self.minimal_target(i, k_props);
        if let (true, kind) = check(&t1, &local)? {
            return Ok(Some((1, kind)));
        }
        // Level 2: neighbourhood hypothesis — the conjuncts that fit
        // entirely inside the footprint Σᵢ ∪ props(K). Conjuncts merely
        // *touching* the footprint would drag their remaining propositions
        // in and blow the expansion back up to the union width.
        let own = self.components[i].system.alphabet();
        let relevant: Vec<Formula> = conjuncts
            .iter()
            .filter(|c| {
                let ps = c.atomic_props();
                ps.iter().all(|p| own.contains(p) || k_props.contains(p))
            })
            .cloned()
            .collect();
        let hyp = Formula::and_many(relevant);
        let wide = hyp.clone().implies(k.clone().ax());
        let mut props2 = wide.atomic_props();
        props2.extend(k_props.iter().cloned());
        let t2 = self.minimal_target(i, &props2);
        if let (true, kind) = check(&t2, &wide)? {
            return Ok(Some((2, kind)));
        }
        // Level 3: full mutual induction.
        let full = inv.clone().implies(k.clone().ax());
        let props3 = full.atomic_props();
        let t3 = self.minimal_target(i, &props3);
        if let (true, kind) = check(&t3, &full)? {
            return Ok(Some((3, kind)));
        }
        Ok(None)
    }

    /// Discharge a guarantees property: prove each left-hand obligation of
    /// `g` on the composition (compositionally where classifiable), then
    /// conclude the right-hand sides.
    pub fn discharge(&self, g: &Guarantee) -> Result<Certificate, EngineError> {
        let mut cert = Certificate::new(format!("discharge {}", g.provenance));
        for (f, r) in &g.lhs {
            let sub = self.prove(r, f)?;
            let compositional = sub.fully_compositional();
            cert.step(format!("obligation ⊨_{r} {f}"), sub.valid, compositional);
        }
        if cert.valid {
            for (f, r) in &g.rhs {
                cert.step(format!("concluded: system ⊨_{r} {f}"), true, true);
            }
        }
        Ok(cert)
    }

    /// Prove `⊨_r f` of the composition by **abstraction substitution**:
    /// discharge `Cᵢ ⊑ A` once, then check the property on the (usually
    /// far smaller) composition with `A` standing in for `Cᵢ`.
    ///
    /// Soundness is enforced *before* anything is checked
    /// ([`substitution_side_conditions`]): a violated side condition is a
    /// typed [`EngineError::Refinement`], never a verdict. A *failed*
    /// simulation premise, by contrast, is an honest negative outcome: the
    /// returned certificate records the counterexample and is invalid.
    ///
    /// With a store attached, the whole deduction is memoized under a
    /// substitution-shaped key, and the simulation premise is memoized on
    /// its own so other substitutions reusing the same `(C, A)` pair skip
    /// the fixpoint. The certificate carries a [`StoredSubstitution`]
    /// record with the content-addressed key of the abstraction, so
    /// `cmc-testkit` can replay the deduction from the certificate alone.
    pub fn prove_substituted(
        &self,
        sub: &Substitution,
        r: &Restriction,
        f: &Formula,
    ) -> Result<Certificate, EngineError> {
        let i = sub.component;
        if i >= self.components.len() {
            return Err(EngineError::Check(format!(
                "substitution component index {i} out of range ({} components)",
                self.components.len()
            )));
        }
        let comp = &self.components[i];
        let concrete = &comp.system;
        let abstraction = &sub.abstraction;
        let rest: Vec<&System> = self
            .components
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, c)| &c.system)
            .collect();
        substitution_side_conditions(&comp.name, concrete, abstraction, &rest, r, f)?;
        let key =
            ObligationKey::substituted(self.backend.tag(), concrete, abstraction, &rest, r, f);
        self.cached_deduction(key, || {
            let mut cert =
                Certificate::new(format!("system ⊨_{r} {f} via abstraction of {}", comp.name));
            cert.step(
                format!(
                    "substitution side conditions hold for {} (Σ_A ⊆ Σ_C, shared \
                     propositions retained, {f} universal)",
                    comp.name
                ),
                true,
                true,
            );
            // Premise: C ⊑ A, memoized on its own key so any deduction
            // reusing this (concrete, abstraction) pair skips the fixpoint.
            let sim_key = ObligationKey::refines(concrete, abstraction, self.backend.tag());
            let fresh = std::cell::RefCell::new(None);
            let run_sim = || -> Result<Entry, EngineError> {
                let (out, kind) = check_refines(self.backend, concrete, abstraction)
                    .map_err(|e| EngineError::Check(e.to_string()))?;
                let holds = out.holds();
                *fresh.borrow_mut() = Some((out, kind));
                Ok(Entry::verdict(holds))
            };
            let (sim_holds, sim_hit) = match &self.store {
                Some(store) => {
                    let (entry, hit) = store.get_or_check(sim_key, run_sim)?;
                    (entry.verdict, hit)
                }
                None => (run_sim()?.verdict, false),
            };
            let premise = format!("{} ⊑ abstraction", comp.name);
            match fresh.into_inner() {
                Some((out, kind)) => {
                    let detail = match out.counterexample() {
                        Some(cx) => format!("{premise} FAILS: {}", cx.display(concrete.alphabet())),
                        None => format!("{premise} ({out})"),
                    };
                    cert.step_checked(detail, sim_holds, true, kind, None);
                }
                None => cert.step(Self::mark(premise, sim_hit), sim_holds, true),
            }
            if !sim_holds {
                return Ok(cert);
            }
            // Conclusion side: the property on the substituted composition,
            // proved by the ordinary compositional machinery.
            let mut comps = self.components.clone();
            comps[i] = Component::new(format!("A[{}]", comp.name), abstraction.clone());
            let mut inner = Engine::new(comps).with_backend(self.backend);
            if let Some(store) = &self.store {
                inner.set_store(Arc::clone(store));
            }
            let inner_cert = inner.prove(r, f)?;
            let inner_valid = inner_cert.valid;
            cert.steps.extend(inner_cert.steps);
            cert.abstractions.extend(inner_cert.abstractions);
            cert.valid &= inner_valid;
            if cert.valid {
                cert.step(
                    format!(
                        "{} ⊑ A and A ∘ rest ⊨_r {f} (universal) give the conclusion \
                         on the concrete composition",
                        comp.name
                    ),
                    true,
                    true,
                );
            }
            cert.abstractions.push(StoredSubstitution {
                component: comp.name.clone(),
                abstraction_key: ObligationKey::system(abstraction).to_hex(),
                concrete: concrete.clone(),
                abstraction: abstraction.clone(),
                rest: rest.iter().map(|s| (*s).clone()).collect(),
                init: r.init.to_string(),
                fairness: r.fairness.iter().map(|g| g.to_string()).collect(),
                formula: f.to_string(),
            });
            Ok(cert)
        })
    }

    /// Prove `⊨_r f` of a **two-component** composition by the circular
    /// assume-guarantee rule: discharge the cross premises
    /// `C₁ ∘ A₂ ⊑ A₁ ∘ A₂` and `A₁ ∘ C₂ ⊑ A₁ ∘ A₂`
    /// ([`circular_refines`], with the base case taken from `r`'s initial
    /// condition), then check the property once on the joint abstraction
    /// `A₁ ∘ A₂`. Every way the circle could be unsound — a vacuous or
    /// out-of-scope base case, a non-universal property, an abstraction
    /// inventing state — is a typed [`EngineError::Refinement`].
    pub fn prove_circular(
        &self,
        a1: &System,
        a2: &System,
        r: &Restriction,
        f: &Formula,
    ) -> Result<Certificate, EngineError> {
        if self.components.len() != 2 {
            return Err(EngineError::Check(format!(
                "circular discharge needs exactly two components (engine has {})",
                self.components.len()
            )));
        }
        let (comp1, comp2) = (&self.components[0], &self.components[1]);
        let (c1, c2) = (&comp1.system, &comp2.system);
        // Scope and fragment side conditions; the alphabet-subset and
        // base-case conditions are enforced inside `circular_refines`.
        let surviving = a1.alphabet().union(a2.alphabet());
        let mut out_of_scope: Vec<String> = f
            .atomic_props()
            .into_iter()
            .chain(r.init.atomic_props())
            .chain(r.fairness.iter().flat_map(|g| g.atomic_props()))
            .filter(|p| !surviving.contains(p))
            .collect();
        out_of_scope.sort();
        out_of_scope.dedup();
        if !out_of_scope.is_empty() {
            return Err(RefinementError::PropertyOutsideAbstraction {
                props: out_of_scope,
            }
            .into());
        }
        crate::rules::require_universal(f)?;
        for (what, g) in
            std::iter::once(("I", &r.init)).chain(r.fairness.iter().map(|g| ("fairness", g)))
        {
            if !g.is_propositional() {
                return Err(RefinementError::RestrictionNotPropositional {
                    what: format!("{what} = {g}"),
                }
                .into());
            }
        }
        // Memo key: both oriented premises, combined asymmetrically.
        let k1 = ObligationKey::substituted(self.backend.tag(), c1, a1, &[a2], r, f);
        let k2 = ObligationKey::substituted(self.backend.tag(), c2, a2, &[a1], r, f);
        let key = ObligationKey(k1.0 ^ k2.0.rotate_left(1));
        self.cached_deduction(key, || {
            let discharge = circular_refines(self.backend, c1, a1, c2, a2, &r.init)?;
            let mut cert = Certificate::new(format!(
                "system ⊨_{r} {f} via circular abstraction of {} and {}",
                comp1.name, comp2.name
            ));
            cert.step(
                format!(
                    "circular base case {} is propositional, in scope, and inhabited \
                     ({} assignments)",
                    r.init, discharge.base_states
                ),
                true,
                true,
            );
            cert.step_checked(
                format!("premise C1 ∘ A2 ⊑ A1 ∘ A2 ({})", discharge.h1.0),
                true,
                true,
                discharge.h1.1,
                None,
            );
            cert.step_checked(
                format!("premise A1 ∘ C2 ⊑ A1 ∘ A2 ({})", discharge.h2.0),
                true,
                true,
                discharge.h2.1,
                None,
            );
            let mut inner = Engine::new(vec![
                Component::new(format!("A[{}]", comp1.name), a1.clone()),
                Component::new(format!("A[{}]", comp2.name), a2.clone()),
            ])
            .with_backend(self.backend);
            if let Some(store) = &self.store {
                inner.set_store(Arc::clone(store));
            }
            let inner_cert = inner.prove(r, f)?;
            let inner_valid = inner_cert.valid;
            cert.steps.extend(inner_cert.steps);
            cert.valid &= inner_valid;
            if cert.valid {
                cert.step(
                    "circular rule: both cross premises and the abstract property \
                     give the conclusion on the concrete composition",
                    true,
                    true,
                );
            }
            let spec = a1.compose(a2);
            let spec_key = ObligationKey::system(&spec).to_hex();
            for (name, concrete) in [
                (
                    format!("{} (circular premise C1 ∘ A2)", comp1.name),
                    c1.compose(a2),
                ),
                (
                    format!("{} (circular premise A1 ∘ C2)", comp2.name),
                    a1.compose(c2),
                ),
            ] {
                cert.abstractions.push(StoredSubstitution {
                    component: name,
                    abstraction_key: spec_key.clone(),
                    concrete,
                    abstraction: spec.clone(),
                    rest: vec![],
                    init: r.init.to_string(),
                    fairness: r.fairness.iter().map(|g| g.to_string()).collect(),
                    formula: f.to_string(),
                });
            }
            Ok(cert)
        })
    }

    /// Cross-check a claim against the monolithic composition (used by the
    /// test-suite to validate the engine's conclusions).
    pub fn monolithic_check(&self, r: &Restriction, f: &Formula) -> Result<bool, EngineError> {
        let target = self.composition_target();
        check_routed(self.backend, &target, r, f)
            .map(|v| v.holds)
            .map_err(|e| EngineError::Check(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::parse;

    /// Two components over {x} and {y}: x only rises; y only rises.
    fn rising_pair() -> Engine {
        let mut mx = System::new(Alphabet::new(["x"]));
        mx.add_transition_named(&[], &["x"]);
        let mut my = System::new(Alphabet::new(["y"]));
        my.add_transition_named(&[], &["y"]);
        Engine::new(vec![Component::new("mx", mx), Component::new("my", my)])
    }

    #[test]
    fn universal_property_proved_compositionally() {
        let e = rising_pair();
        // x ⇒ AX x holds in mx, and in my's expansion x is frame-preserved.
        let cert = e
            .prove(&Restriction::trivial(), &parse("x -> AX x").unwrap())
            .unwrap();
        assert!(cert.valid, "{cert}");
        assert!(cert.fully_compositional());
        // Cross-check against the monolith.
        assert!(e
            .monolithic_check(&Restriction::trivial(), &parse("x -> AX x").unwrap())
            .unwrap());
    }

    #[test]
    fn universal_property_fails_when_a_component_breaks_it() {
        // my2 can clear x! (shares the variable)
        let mut mx = System::new(Alphabet::new(["x"]));
        mx.add_transition_named(&[], &["x"]);
        let mut my2 = System::new(Alphabet::new(["x", "y"]));
        my2.add_transition_named(&["x"], &["y"]);
        let e = Engine::new(vec![
            Component::new("mx", mx),
            Component::new("saboteur", my2),
        ]);
        let cert = e
            .prove(&Restriction::trivial(), &parse("x -> AX x").unwrap())
            .unwrap();
        assert!(!cert.valid);
        // The certificate pinpoints the failing component.
        assert!(cert
            .steps
            .iter()
            .any(|s| !s.ok && s.description.contains("saboteur")));
        assert!(!e
            .monolithic_check(&Restriction::trivial(), &parse("x -> AX x").unwrap())
            .unwrap());
    }

    #[test]
    fn existential_property_from_one_component() {
        let e = rising_pair();
        // ¬x ⇒ EX x holds in mx; transfers existentially.
        let cert = e
            .prove(&Restriction::trivial(), &parse("!x -> EX x").unwrap())
            .unwrap();
        assert!(cert.valid, "{cert}");
        assert!(cert.fully_compositional());
        assert!(e
            .monolithic_check(&Restriction::trivial(), &parse("!x -> EX x").unwrap())
            .unwrap());
    }

    #[test]
    fn unclassifiable_falls_back_to_monolith() {
        let e = rising_pair();
        let cert = e
            .prove(&Restriction::trivial(), &parse("EF (x & y)").unwrap())
            .unwrap();
        assert!(cert.valid, "{cert}");
        assert!(!cert.fully_compositional());
    }

    #[test]
    fn invariant_rule_end_to_end() {
        // Components: x rises; a monitor that sets y when x (y over both).
        let mut mx = System::new(Alphabet::new(["x"]));
        mx.add_transition_named(&[], &["x"]);
        let mut mon = System::new(Alphabet::new(["x", "y"]));
        mon.add_transition_named(&["x"], &["x", "y"]);
        let e = Engine::new(vec![Component::new("mx", mx), Component::new("mon", mon)]);
        // Invariant: y ⇒ x. Initially ¬x ∧ ¬y.
        let inv = parse("y -> x").unwrap();
        let init = parse("!x & !y").unwrap();
        let cert = e.prove_invariant(&inv, &init, &[]).unwrap();
        assert!(cert.valid, "{cert}");
        assert!(cert.fully_compositional());
        // Cross-check AG(inv) monolithically under the same restriction.
        let r = Restriction::with_init(init);
        assert!(e.monolithic_check(&r, &inv.ag()).unwrap());
    }

    #[test]
    fn invariant_rule_rejects_bad_invariant() {
        let e = rising_pair();
        // "x" is not inductive from ¬x init (init fails validity I ⇒ Inv).
        let cert = e
            .prove_invariant(&parse("x").unwrap(), &parse("!x").unwrap(), &[])
            .unwrap();
        assert!(!cert.valid);
    }

    #[test]
    fn discharge_rule4_guarantee() {
        // Component with an always-enabled helpful move p -> q (shared p,q
        // alphabet); environment only stutters on these.
        let mut helper = System::new(Alphabet::new(["p", "q"]));
        helper.add_transition_named(&["p"], &["q"]);
        helper.add_transition_named(&["p", "q"], &["q"]);
        let idle = System::new(Alphabet::new(["p", "q"]));
        let p = parse("p").unwrap();
        let q = parse("q").unwrap();
        let g = crate::rules::rule4(&helper, &p, &q).unwrap();
        let e = Engine::new(vec![
            Component::new("helper", helper),
            Component::new("idle", idle),
        ]);
        let cert = e.discharge(&g).unwrap();
        assert!(cert.valid, "{cert}");
        // The conclusion is checkable monolithically too: under the
        // fairness (¬p ∨ q), p ⇒ A(p U q).
        let r = &g.rhs[0].1;
        assert!(e.monolithic_check(r, &g.rhs[0].0).unwrap());
        assert!(e.monolithic_check(&g.rhs[1].1, &g.rhs[1].0).unwrap());
    }

    #[test]
    fn discharge_fails_with_disabling_environment() {
        // Environment that can clear p∧... — wait, the obligation is
        // p ⇒ AX(p∨q) on the system; a saboteur moving p-states to ¬p∧¬q
        // states breaks it.
        let mut helper = System::new(Alphabet::new(["p", "q"]));
        helper.add_transition_named(&["p"], &["q"]);
        helper.add_transition_named(&["p", "q"], &["q"]);
        let mut saboteur = System::new(Alphabet::new(["p", "q"]));
        saboteur.add_transition_named(&["p"], &[]);
        let p = parse("p").unwrap();
        let q = parse("q").unwrap();
        let g = crate::rules::rule4(&helper, &p, &q).unwrap();
        let e = Engine::new(vec![
            Component::new("helper", helper),
            Component::new("saboteur", saboteur),
        ]);
        let cert = e.discharge(&g).unwrap();
        assert!(!cert.valid);
        // And indeed the liveness conclusion fails monolithically.
        assert!(!e.monolithic_check(&g.rhs[0].1, &g.rhs[0].0).unwrap());
    }

    /// The hypothesis-escalation ladder: a mutual-induction invariant
    /// whose conjuncts are not inductive alone must pass at level >= 2 and
    /// the certificate must say so.
    #[test]
    fn invariant_escalation_levels() {
        // Ring of three stations passing a token (t0 -> t1 -> t2 -> t0).
        let station = |i: usize| {
            let j = (i + 1) % 3;
            let names = [format!("t{i}"), format!("t{j}")];
            let mut m = System::new(Alphabet::new(names));
            let st = |b: bool, c: bool| {
                let s = cmc_kripke::State::EMPTY;
                s.with(0, b).with(1, c)
            };
            // token handoff: (t_i, *) -> (!t_i, t_j)
            m.add_transition(st(true, false), st(false, true));
            m.add_transition(st(true, true), st(false, true));
            m
        };
        let e = Engine::new(vec![
            Component::new("s0", station(0)),
            Component::new("s1", station(1)),
            Component::new("s2", station(2)),
        ]);
        // Pairwise mutual exclusion: each conjunct alone is NOT inductive
        // (a handoff into t_j needs to know the source t_k was exclusive),
        // so the engine must escalate.
        let inv = parse("!(t0 & t1) & !(t0 & t2) & !(t1 & t2)").unwrap();
        let init = parse("t0 & !t1 & !t2").unwrap();
        let cert = e.prove_invariant(&inv, &init, &[]).unwrap();
        assert!(cert.valid, "{cert}");
        assert!(cert.fully_compositional());
        assert!(
            cert.steps
                .iter()
                .any(|s| s.description.contains("mutual induction")),
            "escalation expected: {cert}"
        );
        // Cross-check monolithically.
        let r = Restriction::with_init(init);
        assert!(e.monolithic_check(&r, &inv.ag()).unwrap());
    }

    /// Minimal expansions: obligations whose propositions live inside one
    /// component never construct wide systems (observable through a large
    /// union alphabet that would exceed the explicit checker's limit if
    /// fully expanded).
    #[test]
    fn minimal_expansion_keeps_wide_unions_tractable() {
        // 30 independent 1-bit components: union alphabet of 30 props is
        // beyond MAX_EXPLICIT_PROPS, so full-union expansion would fail.
        let comps: Vec<Component> = (0..30)
            .map(|i| {
                let name = format!("x{i}");
                let mut m = System::new(Alphabet::new([name.clone()]));
                m.add_transition_named(&[], &[name.as_str()]);
                Component::new(format!("c{i}"), m)
            })
            .collect();
        let e = Engine::new(comps);
        assert_eq!(e.union_alphabet().len(), 30);
        let cert = e
            .prove(&Restriction::trivial(), &parse("x3 -> AX x3").unwrap())
            .unwrap();
        assert!(cert.valid, "{cert}");
        assert!(cert.fully_compositional());
    }

    /// The acceptance scenario for pluggable backends: an unclassifiable
    /// property over a composition whose union alphabet exceeds
    /// `MAX_EXPLICIT_PROPS` forces a whole-system check, which the old
    /// explicit-only engine could never run (`TooLarge`). With the `Auto`
    /// policy the fallback routes to the symbolic backend and succeeds.
    #[test]
    fn auto_backend_proves_wide_composition_monolithically() {
        let width = cmc_ctl::MAX_EXPLICIT_PROPS + 2; // 26 > 24
        let comps: Vec<Component> = (0..width)
            .map(|i| {
                let name = format!("x{i}");
                let mut m = System::new(Alphabet::new([name.clone()]));
                m.add_transition_named(&[], &[name.as_str()]);
                Component::new(format!("c{i}"), m)
            })
            .collect();
        // EF (x0 & x25) is not classifiable by Rules 1-3, so the proof
        // must fall back to the whole 26-proposition composition.
        let f = parse(&format!("EF (x0 & x{})", width - 1)).unwrap();

        let auto = Engine::new(comps.clone());
        let cert = auto.prove(&Restriction::trivial(), &f).unwrap();
        assert!(cert.valid, "{cert}");
        assert!(!cert.fully_compositional());
        assert!(
            cert.steps
                .iter()
                .any(|s| s.backend == Some(BackendKind::Symbolic)),
            "the wide fallback must have run symbolically: {cert}"
        );
        assert!(auto.monolithic_check(&Restriction::trivial(), &f).unwrap());

        // Forcing the explicit backend still refuses: a trivial init over
        // 26 propositions would materialise 2^26 states, past the budget.
        let explicit = Engine::new(comps).with_backend(BackendChoice::Explicit);
        let err = explicit.prove(&Restriction::trivial(), &f).unwrap_err();
        assert!(
            err.to_string()
                .contains("exceeds the explicit-engine budget"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn forced_backends_agree_with_auto() {
        let e = rising_pair();
        let f = parse("x -> AX x").unwrap();
        for choice in [BackendChoice::Explicit, BackendChoice::Symbolic] {
            let forced = rising_pair().with_backend(choice);
            let cert = forced.prove(&Restriction::trivial(), &f).unwrap();
            assert!(cert.valid, "{choice:?}: {cert}");
            assert_eq!(
                cert.valid,
                e.prove(&Restriction::trivial(), &f).unwrap().valid
            );
            let expected = Some(choice.select(1));
            assert!(
                cert.steps
                    .iter()
                    .filter(|s| s.backend.is_some())
                    .all(|s| s.backend == expected),
                "{choice:?} must pin every checked step: {cert}"
            );
        }
    }

    #[test]
    fn store_replays_identical_certificates() {
        let store = Arc::new(CertStore::new());
        let e = rising_pair().with_store(Arc::clone(&store));
        let f = parse("x -> AX x").unwrap();
        let bare = rising_pair().prove(&Restriction::trivial(), &f).unwrap();
        let cold = e.prove(&Restriction::trivial(), &f).unwrap();
        let warm = e.prove(&Restriction::trivial(), &f).unwrap();
        // The cold run (empty store) proves exactly what a store-less
        // engine proves, and the warm run replays it verbatim.
        assert_eq!(bare, cold);
        assert_eq!(cold, warm);
        assert!(store.stats().hits >= 1, "{}", store.stats());
    }

    #[test]
    fn shared_component_hits_across_compositions() {
        let store = Arc::new(CertStore::new());
        let mut mx = System::new(Alphabet::new(["x"]));
        mx.add_transition_named(&[], &["x"]);
        let mut my = System::new(Alphabet::new(["y"]));
        my.add_transition_named(&[], &["y"]);
        let mut mz = System::new(Alphabet::new(["z"]));
        mz.add_transition_named(&[], &["z"]);
        let f = parse("x -> AX x").unwrap();

        let e1 = Engine::new(vec![
            Component::new("mx", mx.clone()),
            Component::new("my", my),
        ])
        .with_store(Arc::clone(&store));
        let c1 = e1.prove(&Restriction::trivial(), &f).unwrap();
        assert!(c1.valid);
        assert!(!c1.steps.iter().any(|s| s.description.contains("(cached)")));

        // A different composition sharing mx: mx's obligation is answered
        // from the store; mz's is fresh.
        let e2 = Engine::new(vec![Component::new("mx", mx), Component::new("mz", mz)])
            .with_store(Arc::clone(&store));
        let c2 = e2.prove(&Restriction::trivial(), &f).unwrap();
        assert!(c2.valid);
        assert!(
            c2.steps
                .iter()
                .any(|s| s.description.contains("mx") && s.description.contains("(cached)")),
            "{c2}"
        );
        assert!(
            c2.steps
                .iter()
                .any(|s| s.description.contains("mz") && !s.description.contains("(cached)")),
            "{c2}"
        );
        assert!(store.stats().hits >= 1);
    }

    /// Toggler on `name` with `k` private scratch bits cycled before the
    /// observable flips.
    fn scratch_toggler(name: &str, scratch: &[&str]) -> System {
        let mut names = vec![name.to_string()];
        names.extend(scratch.iter().map(|s| s.to_string()));
        let mut m = System::new(Alphabet::new(names.clone()));
        // Walk up through the scratch bits, flip the observable, walk down.
        let mut cur: Vec<&str> = vec![];
        for s in scratch {
            let mut next = cur.clone();
            next.push(s);
            m.add_transition_named(&cur, &next);
            cur = next;
        }
        let mut with_obs = cur.clone();
        with_obs.insert(0, name);
        m.add_transition_named(&cur, &with_obs);
        m.add_transition_named(&with_obs, &[name]);
        m.add_transition_named(&[name], &[]);
        m
    }

    #[test]
    fn substituted_proof_is_sound_and_recorded() {
        let c = scratch_toggler("x", &["s1", "s2"]);
        let a = c.project(&Alphabet::new(["x"]));
        let ctx = scratch_toggler("y", &[]);
        let e = Engine::new(vec![
            Component::new("worker", c.clone()),
            Component::new("ctx", ctx),
        ]);
        let f = parse("AG (x | !x)").unwrap();
        let r = Restriction::trivial();
        let sub = Substitution::new(0, a.clone());
        let cert = e.prove_substituted(&sub, &r, &f).unwrap();
        assert!(cert.valid, "{cert}");
        assert_eq!(cert.abstractions.len(), 1);
        let rec = &cert.abstractions[0];
        assert_eq!(rec.component, "worker");
        assert_eq!(rec.concrete, c);
        assert_eq!(rec.abstraction, a);
        assert_eq!(rec.abstraction_key, ObligationKey::system(&a).to_hex());
        assert_eq!(rec.formula, f.to_string());
        // Verdict agrees with the monolith.
        assert!(e.monolithic_check(&r, &f).unwrap());
    }

    #[test]
    fn substituted_proof_replays_verbatim_from_the_store() {
        let c = scratch_toggler("x", &["s1"]);
        let a = c.project(&Alphabet::new(["x"]));
        let ctx = scratch_toggler("y", &[]);
        let store = Arc::new(CertStore::new());
        let mk = |store: &Arc<CertStore>| {
            Engine::new(vec![
                Component::new("worker", c.clone()),
                Component::new("ctx", ctx.clone()),
            ])
            .with_store(Arc::clone(store))
        };
        let f = parse("AG (y -> AX (y | x))").unwrap();
        let r = Restriction::trivial();
        let sub = Substitution::new(0, a);
        let cold = mk(&store).prove_substituted(&sub, &r, &f).unwrap();
        let warm = mk(&store).prove_substituted(&sub, &r, &f).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold.abstractions, warm.abstractions);
        assert!(store.stats().hits >= 1);
    }

    #[test]
    fn unsound_substitutions_are_typed_errors_not_verdicts() {
        let c = scratch_toggler("x", &["s1"]);
        let a = c.project(&Alphabet::new(["x"]));
        // Context sharing the scratch bit the abstraction drops.
        let mut ctx = System::new(Alphabet::new(["s1"]));
        ctx.add_transition_named(&[], &["s1"]);
        let e = Engine::new(vec![
            Component::new("worker", c),
            Component::new("peeker", ctx),
        ]);
        let err = e
            .prove_substituted(
                &Substitution::new(0, a.clone()),
                &Restriction::trivial(),
                &parse("AG (x | !x)").unwrap(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Refinement(RefinementError::SharedPropositionDropped { .. })
        ));
        // An existential property is likewise refused up front (clean
        // context, so the dropped-proposition check cannot mask it).
        let e = Engine::new(vec![
            Component::new("worker", scratch_toggler("x", &["s1"])),
            Component::new("ctx", scratch_toggler("y", &[])),
        ]);
        let err = e
            .prove_substituted(
                &Substitution::new(0, a),
                &Restriction::trivial(),
                &parse("EF x").unwrap(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Refinement(RefinementError::NotUniversal { .. })
        ));
    }

    #[test]
    fn failed_simulation_premise_yields_an_invalid_certificate() {
        // The "abstraction" forgets the toggler's descent, so C ⋢ A.
        let c = scratch_toggler("x", &[]);
        let mut a = System::new(Alphabet::new(["x"]));
        a.add_transition_named(&[], &["x"]);
        let ctx = scratch_toggler("y", &[]);
        let e = Engine::new(vec![
            Component::new("worker", c),
            Component::new("ctx", ctx),
        ]);
        let cert = e
            .prove_substituted(
                &Substitution::new(0, a),
                &Restriction::trivial(),
                &parse("AG (x | !x)").unwrap(),
            )
            .unwrap();
        assert!(!cert.valid);
        assert!(
            cert.steps
                .iter()
                .any(|s| !s.ok && s.description.contains("FAILS")),
            "{cert}"
        );
        // Nothing was substituted, so nothing is recorded for replay.
        assert!(cert.abstractions.is_empty());
    }

    #[test]
    fn circular_discharge_proves_a_cross_property() {
        let c1 = scratch_toggler("x", &["s1"]);
        let a1 = c1.project(&Alphabet::new(["x"]));
        let c2 = scratch_toggler("y", &["s2"]);
        let a2 = c2.project(&Alphabet::new(["y"]));
        let e = Engine::new(vec![
            Component::new("left", c1),
            Component::new("right", c2),
        ]);
        let r = Restriction::trivial();
        let f = parse("AG ((x & y) -> (x | y))").unwrap();
        let cert = e.prove_circular(&a1, &a2, &r, &f).unwrap();
        assert!(cert.valid, "{cert}");
        assert_eq!(cert.abstractions.len(), 2);
        assert!(cert
            .steps
            .iter()
            .any(|s| s.description.contains("premise C1 ∘ A2")));
        assert!(e.monolithic_check(&r, &f).unwrap());
    }

    #[test]
    fn unsound_circular_discharges_are_rejected() {
        let c1 = scratch_toggler("x", &["s1"]);
        let a1 = c1.project(&Alphabet::new(["x"]));
        let c2 = scratch_toggler("y", &["s2"]);
        let a2 = c2.project(&Alphabet::new(["y"]));
        let e = Engine::new(vec![
            Component::new("left", c1.clone()),
            Component::new("right", c2.clone()),
        ]);
        let f = parse("AG (x | !x)").unwrap();
        // Vacuous base case.
        let err = e
            .prove_circular(
                &a1,
                &a2,
                &Restriction::with_init(parse("x & !x").unwrap()),
                &f,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Refinement(RefinementError::CircularBaseCaseFailed { .. })
        ));
        // A premise that does not hold names itself.
        let mut riser = System::new(Alphabet::new(["x"]));
        riser.add_transition_named(&[], &["x"]);
        let err = e
            .prove_circular(&riser, &a2, &Restriction::trivial(), &f)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Refinement(RefinementError::SimulationFailed { .. })
        ));
        // Wrong arity engine.
        let three = Engine::new(vec![
            Component::new("a", c1.clone()),
            Component::new("b", c2.clone()),
            Component::new("c", scratch_toggler("z", &[])),
        ]);
        assert!(three
            .prove_circular(&a1, &a2, &Restriction::trivial(), &f)
            .is_err());
    }

    #[test]
    fn certificate_display() {
        let e = rising_pair();
        let cert = e
            .prove(&Restriction::trivial(), &parse("x -> AX x").unwrap())
            .unwrap();
        let text = cert.to_string();
        assert!(text.contains("goal:"));
        assert!(text.contains("[ok]"));
        assert!(text.contains("established"));
    }

    #[test]
    fn certificate_introspection_hooks() {
        let mut cert = Certificate::new("demo");
        cert.step("pure deduction", true, true);
        cert.step_checked(
            "fresh check",
            true,
            true,
            BackendKind::Explicit,
            Some(Duration::from_millis(1)),
        );
        cert.step_checked(
            "shared obligation (cached)",
            true,
            true,
            BackendKind::Symbolic,
            None,
        );

        assert!(cert.is_consistent());
        assert_eq!(cert.checked_steps().count(), 2);
        assert_eq!(
            cert.backends_used(),
            vec![BackendKind::Explicit, BackendKind::Symbolic]
        );
        assert!(!cert.steps[0].cached());
        assert!(!cert.steps[1].cached());
        assert!(cert.steps[2].cached());

        // A certificate whose flag contradicts its steps is inconsistent.
        cert.valid = true;
        cert.steps[1].ok = false;
        assert!(!cert.is_consistent());
    }
}
