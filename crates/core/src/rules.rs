//! Progress rules (Rules 4 and 5) and the safety/invariant rule — the
//! machinery that produces *guarantees properties* from component-level
//! model checking (§3.3, §4.2.3, §5 of the paper).

use cmc_ctl::{Checker, Formula, Restriction};
use cmc_kripke::System;
use std::fmt;

/// Errors from rule application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// A rule side condition requires a propositional formula.
    NotPropositional(String),
    /// The rule's model-checking premise failed on the component.
    PremiseFailed(String),
    /// Explicit checking failed (alphabet/size).
    Check(String),
    /// Malformed cover for Rule 5.
    BadCover(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::NotPropositional(m) => write!(f, "not propositional: {m}"),
            RuleError::PremiseFailed(m) => write!(f, "rule premise failed: {m}"),
            RuleError::Check(m) => write!(f, "model checking error: {m}"),
            RuleError::BadCover(m) => write!(f, "bad cover: {m}"),
        }
    }
}

impl std::error::Error for RuleError {}

/// A *guarantees* property of a component: if the **composed system**
/// satisfies every left-hand obligation, it satisfies every right-hand
/// conclusion. Guarantees properties are themselves existential, so they
/// are inherited by any system containing the component (§3.3).
#[derive(Debug, Clone)]
pub struct Guarantee {
    /// Obligations on the composed system: `(formula, restriction)`.
    pub lhs: Vec<(Formula, Restriction)>,
    /// Conclusions that then hold of the composed system.
    pub rhs: Vec<(Formula, Restriction)>,
    /// Human-readable provenance (which rule, which component, which
    /// parameters).
    pub provenance: String,
}

impl fmt::Display for Guarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "guarantee [{}]:", self.provenance)?;
        for (g, r) in &self.lhs {
            writeln!(f, "  requires ⊨_{r} {g}")?;
        }
        for (g, r) in &self.rhs {
            writeln!(f, "  ensures  ⊨_{r} {g}")?;
        }
        Ok(())
    }
}

/// **Rule 4** (weak fairness). Let `M` be a component with
/// `M ⊨ p ⇒ EX q` (the helpful transition is always enabled), and let
/// `r = (true, {¬p ∨ q})`. Then `M` satisfies
///
/// ```text
/// (p ⇒ AX (p ∨ q))  guarantees_r  ((p ⇒ A(p U q)) ∧ (p ⇒ E(p U q)))
/// ```
///
/// The premise is model-checked on `M` here; the returned [`Guarantee`]
/// carries the obligation and conclusions for the composed system.
pub fn rule4(m: &System, p: &Formula, q: &Formula) -> Result<Guarantee, RuleError> {
    require_propositional(p, "p")?;
    require_propositional(q, "q")?;
    let checker = Checker::new(m).map_err(|e| RuleError::Check(e.to_string()))?;
    let premise = p.clone().implies(q.clone().ex());
    let ok = checker
        .holds_everywhere(&premise)
        .map_err(|e| RuleError::Check(e.to_string()))?;
    if !ok {
        return Err(RuleError::PremiseFailed(format!("M ⊭ {premise}")));
    }
    let r = Restriction::with_fairness([p.clone().not().or(q.clone())]);
    let p_or_q = p.clone().or(q.clone());
    Ok(Guarantee {
        lhs: vec![(
            p.clone().implies(p_or_q.clone().ax()),
            Restriction::trivial(),
        )],
        rhs: vec![
            (p.clone().implies(p.clone().au(q.clone())), r.clone()),
            (p.clone().implies(p.clone().eu(q.clone())), r),
        ],
        provenance: format!("Rule 4 with p = {p}, q = {q}"),
    })
}

/// **Rule 5** (strong fairness). Let `p = p₁ ∨ … ∨ pₙ` be a cover, and let
/// `M ⊨ p_helpful ⇒ EX q` for a helpful disjunct. With
/// `r = (true, {¬p ∨ q})`, `M` satisfies
///
/// ```text
/// (p ⇒ AX (p ∨ q)) ∧ (∀j :: pⱼ ⇒ EF p_helpful)
///   guarantees_r  ((p ⇒ A(p U q)) ∧ (p ⇒ E(p U q)))
/// ```
///
/// Unlike Rule 4, the environment may disable the helpful transition as
/// long as the system can always re-enable it (the `EF` obligations).
pub fn rule5(
    m: &System,
    cover: &[Formula],
    helpful: usize,
    q: &Formula,
) -> Result<Guarantee, RuleError> {
    if cover.is_empty() {
        return Err(RuleError::BadCover("empty cover".into()));
    }
    if helpful >= cover.len() {
        return Err(RuleError::BadCover(format!(
            "helpful index {helpful} out of range (cover has {} disjuncts)",
            cover.len()
        )));
    }
    for (j, pj) in cover.iter().enumerate() {
        require_propositional(pj, &format!("p{}", j + 1))?;
    }
    require_propositional(q, "q")?;
    let p = Formula::or_many(cover.iter().cloned());
    let pi = cover[helpful].clone();
    let checker = Checker::new(m).map_err(|e| RuleError::Check(e.to_string()))?;
    let premise = pi.clone().implies(q.clone().ex());
    let ok = checker
        .holds_everywhere(&premise)
        .map_err(|e| RuleError::Check(e.to_string()))?;
    if !ok {
        return Err(RuleError::PremiseFailed(format!("M ⊭ {premise}")));
    }
    let r = Restriction::with_fairness([p.clone().not().or(q.clone())]);
    let p_or_q = p.clone().or(q.clone());
    let mut lhs = vec![(p.clone().implies(p_or_q.ax()), Restriction::trivial())];
    for pj in cover {
        lhs.push((pj.clone().implies(pi.clone().ef()), Restriction::trivial()));
    }
    Ok(Guarantee {
        lhs,
        rhs: vec![
            (p.clone().implies(p.clone().au(q.clone())), r.clone()),
            (p.clone().implies(p.clone().eu(q.clone())), r),
        ],
        provenance: format!(
            "Rule 5 with cover of {} disjuncts, helpful p{} = {pi}, q = {q}",
            cover.len(),
            helpful + 1
        ),
    })
}

/// The **invariant rule** used throughout §4.2.3/§4.3.4 and motivated in
/// the Discussion: if `Inv` is propositional, `I ⇒ Inv` is valid, and
/// `Inv ⇒ AX Inv` holds in every component (a *universal* property by
/// Rule 2), then the composed system satisfies `AG Inv` under `r = (I, F)`.
///
/// This function only packages the obligations; discharging them is the
/// engine's job ([`crate::engine`]).
pub fn invariant_obligations(
    inv: &Formula,
    init: &Formula,
) -> Result<(Formula, Formula), RuleError> {
    require_propositional(inv, "Inv")?;
    require_propositional(init, "I")?;
    // (universal obligation, validity obligation I ⇒ Inv)
    Ok((
        inv.clone().implies(inv.clone().ax()),
        init.clone().implies(inv.clone()),
    ))
}

fn require_propositional(f: &Formula, what: &str) -> Result<(), RuleError> {
    if f.is_propositional() {
        Ok(())
    } else {
        Err(RuleError::NotPropositional(format!("{what} = {f}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::parse;
    use cmc_kripke::Alphabet;

    /// Helpful component: in p-states, a transition to q is always enabled.
    fn helpful() -> System {
        let mut m = System::new(Alphabet::new(["p", "q"]));
        // p ∧ ¬q -> q (helpful move); also p∧q etc. handled by stutter.
        m.add_transition_named(&["p"], &["q"]);
        m.add_transition_named(&["p", "q"], &["q"]);
        m
    }

    #[test]
    fn rule4_constructs_guarantee() {
        let m = helpful();
        let g = rule4(&m, &parse("p").unwrap(), &parse("q").unwrap()).unwrap();
        assert_eq!(g.lhs.len(), 1);
        assert_eq!(g.rhs.len(), 2);
        assert!(g.lhs[0].1.is_trivial());
        assert_eq!(g.rhs[0].1.fairness, vec![parse("!p | q").unwrap()]);
        assert!(g.provenance.contains("Rule 4"));
        let shown = g.to_string();
        assert!(shown.contains("requires"));
        assert!(shown.contains("ensures"));
    }

    #[test]
    fn rule4_premise_checked() {
        // A system with NO p -> q move: premise p ⇒ EX q fails (state
        // {p} has only the stutter successor).
        let m = System::new(Alphabet::new(["p", "q"]));
        let err = rule4(&m, &parse("p").unwrap(), &parse("q").unwrap()).unwrap_err();
        assert!(matches!(err, RuleError::PremiseFailed(_)));
    }

    #[test]
    fn rule4_requires_propositional() {
        let m = helpful();
        let err = rule4(&m, &parse("EF p").unwrap(), &parse("q").unwrap()).unwrap_err();
        assert!(matches!(err, RuleError::NotPropositional(_)));
    }

    #[test]
    fn rule5_constructs_guarantee_with_ef_obligations() {
        let m = helpful();
        let cover = vec![parse("p & !q").unwrap(), parse("p & q").unwrap()];
        let g = rule5(&m, &cover, 1, &parse("q").unwrap()).unwrap();
        // 1 AX obligation + 2 EF obligations.
        assert_eq!(g.lhs.len(), 3);
        assert!(g.lhs[1].0.to_string().contains("EF"));
        assert_eq!(g.rhs.len(), 2);
    }

    #[test]
    fn rule5_validates_cover() {
        let m = helpful();
        assert!(matches!(
            rule5(&m, &[], 0, &parse("q").unwrap()),
            Err(RuleError::BadCover(_))
        ));
        let cover = vec![parse("p").unwrap()];
        assert!(matches!(
            rule5(&m, &cover, 5, &parse("q").unwrap()),
            Err(RuleError::BadCover(_))
        ));
    }

    #[test]
    fn rule5_premise_on_helpful_disjunct() {
        let m = helpful();
        // Helpful disjunct p∧¬q does have an EX q move in `helpful`.
        let cover = vec![parse("p & !q").unwrap()];
        assert!(rule5(&m, &cover, 0, &parse("q").unwrap()).is_ok());
        // But a disjunct without the move fails.
        let mut no_move = System::new(Alphabet::new(["p", "q"]));
        no_move.add_transition_named(&["q"], &["p"]);
        let err = rule5(&no_move, &cover, 0, &parse("q").unwrap()).unwrap_err();
        assert!(matches!(err, RuleError::PremiseFailed(_)));
    }

    #[test]
    fn invariant_obligations_shapes() {
        let (uni, validity) =
            invariant_obligations(&parse("a -> b").unwrap(), &parse("!a").unwrap()).unwrap();
        assert_eq!(uni.to_string(), "(a -> b) -> AX (a -> b)");
        // `->` is right-associative, so the nested implication needs no
        // parentheses when printed.
        assert_eq!(validity.to_string(), "!a -> a -> b");
        assert!(matches!(
            invariant_obligations(&parse("AG a").unwrap(), &Formula::True),
            Err(RuleError::NotPropositional(_))
        ));
    }
}
