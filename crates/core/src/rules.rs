//! Progress rules (Rules 4 and 5), the safety/invariant rule, and the
//! refinement layer's side conditions — the machinery that produces
//! *guarantees properties* from component-level model checking (§3.3,
//! §4.2.3, §5 of the paper) and keeps abstraction substitution sound.

use crate::backend::{check_refines, BackendChoice, BackendKind};
use cmc_ctl::{Checker, Formula, Restriction};
use cmc_kripke::{Alphabet, SimulationOutcome, State, System};
use std::fmt;

/// Errors from rule application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// A rule side condition requires a propositional formula.
    NotPropositional(String),
    /// The rule's model-checking premise failed on the component.
    PremiseFailed(String),
    /// Explicit checking failed (alphabet/size).
    Check(String),
    /// Malformed cover for Rule 5.
    BadCover(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::NotPropositional(m) => write!(f, "not propositional: {m}"),
            RuleError::PremiseFailed(m) => write!(f, "rule premise failed: {m}"),
            RuleError::Check(m) => write!(f, "model checking error: {m}"),
            RuleError::BadCover(m) => write!(f, "bad cover: {m}"),
        }
    }
}

impl std::error::Error for RuleError {}

/// A *guarantees* property of a component: if the **composed system**
/// satisfies every left-hand obligation, it satisfies every right-hand
/// conclusion. Guarantees properties are themselves existential, so they
/// are inherited by any system containing the component (§3.3).
#[derive(Debug, Clone)]
pub struct Guarantee {
    /// Obligations on the composed system: `(formula, restriction)`.
    pub lhs: Vec<(Formula, Restriction)>,
    /// Conclusions that then hold of the composed system.
    pub rhs: Vec<(Formula, Restriction)>,
    /// Human-readable provenance (which rule, which component, which
    /// parameters).
    pub provenance: String,
}

impl fmt::Display for Guarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "guarantee [{}]:", self.provenance)?;
        for (g, r) in &self.lhs {
            writeln!(f, "  requires ⊨_{r} {g}")?;
        }
        for (g, r) in &self.rhs {
            writeln!(f, "  ensures  ⊨_{r} {g}")?;
        }
        Ok(())
    }
}

/// **Rule 4** (weak fairness). Let `M` be a component with
/// `M ⊨ p ⇒ EX q` (the helpful transition is always enabled), and let
/// `r = (true, {¬p ∨ q})`. Then `M` satisfies
///
/// ```text
/// (p ⇒ AX (p ∨ q))  guarantees_r  ((p ⇒ A(p U q)) ∧ (p ⇒ E(p U q)))
/// ```
///
/// The premise is model-checked on `M` here; the returned [`Guarantee`]
/// carries the obligation and conclusions for the composed system.
pub fn rule4(m: &System, p: &Formula, q: &Formula) -> Result<Guarantee, RuleError> {
    require_propositional(p, "p")?;
    require_propositional(q, "q")?;
    let checker = Checker::new(m).map_err(|e| RuleError::Check(e.to_string()))?;
    let premise = p.clone().implies(q.clone().ex());
    let ok = checker
        .holds_everywhere(&premise)
        .map_err(|e| RuleError::Check(e.to_string()))?;
    if !ok {
        return Err(RuleError::PremiseFailed(format!("M ⊭ {premise}")));
    }
    let r = Restriction::with_fairness([p.clone().not().or(q.clone())]);
    let p_or_q = p.clone().or(q.clone());
    Ok(Guarantee {
        lhs: vec![(
            p.clone().implies(p_or_q.clone().ax()),
            Restriction::trivial(),
        )],
        rhs: vec![
            (p.clone().implies(p.clone().au(q.clone())), r.clone()),
            (p.clone().implies(p.clone().eu(q.clone())), r),
        ],
        provenance: format!("Rule 4 with p = {p}, q = {q}"),
    })
}

/// **Rule 5** (strong fairness). Let `p = p₁ ∨ … ∨ pₙ` be a cover, and let
/// `M ⊨ p_helpful ⇒ EX q` for a helpful disjunct. With
/// `r = (true, {¬p ∨ q})`, `M` satisfies
///
/// ```text
/// (p ⇒ AX (p ∨ q)) ∧ (∀j :: pⱼ ⇒ EF p_helpful)
///   guarantees_r  ((p ⇒ A(p U q)) ∧ (p ⇒ E(p U q)))
/// ```
///
/// Unlike Rule 4, the environment may disable the helpful transition as
/// long as the system can always re-enable it (the `EF` obligations).
pub fn rule5(
    m: &System,
    cover: &[Formula],
    helpful: usize,
    q: &Formula,
) -> Result<Guarantee, RuleError> {
    if cover.is_empty() {
        return Err(RuleError::BadCover("empty cover".into()));
    }
    if helpful >= cover.len() {
        return Err(RuleError::BadCover(format!(
            "helpful index {helpful} out of range (cover has {} disjuncts)",
            cover.len()
        )));
    }
    for (j, pj) in cover.iter().enumerate() {
        require_propositional(pj, &format!("p{}", j + 1))?;
    }
    require_propositional(q, "q")?;
    let p = Formula::or_many(cover.iter().cloned());
    let pi = cover[helpful].clone();
    let checker = Checker::new(m).map_err(|e| RuleError::Check(e.to_string()))?;
    let premise = pi.clone().implies(q.clone().ex());
    let ok = checker
        .holds_everywhere(&premise)
        .map_err(|e| RuleError::Check(e.to_string()))?;
    if !ok {
        return Err(RuleError::PremiseFailed(format!("M ⊭ {premise}")));
    }
    let r = Restriction::with_fairness([p.clone().not().or(q.clone())]);
    let p_or_q = p.clone().or(q.clone());
    let mut lhs = vec![(p.clone().implies(p_or_q.ax()), Restriction::trivial())];
    for pj in cover {
        lhs.push((pj.clone().implies(pi.clone().ef()), Restriction::trivial()));
    }
    Ok(Guarantee {
        lhs,
        rhs: vec![
            (p.clone().implies(p.clone().au(q.clone())), r.clone()),
            (p.clone().implies(p.clone().eu(q.clone())), r),
        ],
        provenance: format!(
            "Rule 5 with cover of {} disjuncts, helpful p{} = {pi}, q = {q}",
            cover.len(),
            helpful + 1
        ),
    })
}

/// The **invariant rule** used throughout §4.2.3/§4.3.4 and motivated in
/// the Discussion: if `Inv` is propositional, `I ⇒ Inv` is valid, and
/// `Inv ⇒ AX Inv` holds in every component (a *universal* property by
/// Rule 2), then the composed system satisfies `AG Inv` under `r = (I, F)`.
///
/// This function only packages the obligations; discharging them is the
/// engine's job ([`crate::engine`]).
pub fn invariant_obligations(
    inv: &Formula,
    init: &Formula,
) -> Result<(Formula, Formula), RuleError> {
    require_propositional(inv, "Inv")?;
    require_propositional(init, "I")?;
    // (universal obligation, validity obligation I ⇒ Inv)
    Ok((
        inv.clone().implies(inv.clone().ax()),
        init.clone().implies(inv.clone()),
    ))
}

fn require_propositional(f: &Formula, what: &str) -> Result<(), RuleError> {
    if f.is_propositional() {
        Ok(())
    } else {
        Err(RuleError::NotPropositional(format!("{what} = {f}")))
    }
}

// ---------------------------------------------------------------------------
// Refinement layer: abstraction substitution and circular assume-guarantee.
// ---------------------------------------------------------------------------

/// Typed rejection reasons for the refinement layer. Every way a
/// substitution or circular discharge can be *unsound* is refused loudly
/// with one of these, never silently answered with a wrong verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefinementError {
    /// The abstraction's alphabet is not a subset of the concrete
    /// component's — projection-based simulation semantics need Σ_A ⊆ Σ_C.
    AlphabetNotSubset {
        /// Which component was being abstracted.
        component: String,
        /// The abstract propositions absent from the concrete alphabet.
        missing: Vec<String>,
    },
    /// The abstraction drops a proposition the concrete component shares
    /// with the context. Unsound: a concrete move changing that shared
    /// proposition would be invisible on the abstract side, so the
    /// substituted composition could satisfy properties the real one
    /// violates.
    SharedPropositionDropped {
        /// Which component was being abstracted.
        component: String,
        /// The shared propositions the abstraction dropped.
        props: Vec<String>,
    },
    /// The property (or restriction) reads propositions that survive in
    /// neither the abstraction nor the context, so its truth value is not
    /// preserved across the substitution.
    PropertyOutsideAbstraction {
        /// The out-of-scope propositions.
        props: Vec<String>,
    },
    /// The property is not in the universal fragment (ACTL). Existential
    /// properties do not transfer from the abstraction down to the
    /// concrete system — the abstraction has *more* behaviours.
    NotUniversal {
        /// The offending (sub)formula.
        formula: String,
    },
    /// The restriction's init or fairness constraints are not
    /// propositional; the projection argument needs state-local
    /// restrictions.
    RestrictionNotPropositional {
        /// Which part of the restriction, rendered.
        what: String,
    },
    /// A simulation premise failed. Carries the premise name and the
    /// concrete counterexample so the caller can repair the abstraction.
    SimulationFailed {
        /// Human-readable premise, e.g. `"C1 ∘ A2 ⊑ A1 ∘ A2"`.
        premise: String,
        /// Rendered counterexample from the simulation checker.
        counterexample: String,
    },
    /// The circular rule's base case is malformed (non-propositional,
    /// out of scope, too wide to decide, or unsatisfiable — a vacuous
    /// discharge proves nothing and is rejected, not silently accepted).
    CircularBaseCaseFailed {
        /// Why the base case was rejected.
        reason: String,
    },
    /// The underlying simulation backend failed (e.g. a forced explicit
    /// policy on an over-wide pair universe).
    Check(String),
}

impl fmt::Display for RefinementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefinementError::AlphabetNotSubset { component, missing } => write!(
                f,
                "abstraction of {component} introduces propositions absent from the \
                 concrete component: {missing:?}"
            ),
            RefinementError::SharedPropositionDropped { component, props } => write!(
                f,
                "abstraction of {component} drops propositions shared with the \
                 context: {props:?} (unsound — context-visible moves would vanish)"
            ),
            RefinementError::PropertyOutsideAbstraction { props } => write!(
                f,
                "property reads propositions surviving in neither the abstraction \
                 nor the context: {props:?}"
            ),
            RefinementError::NotUniversal { formula } => write!(
                f,
                "property is not in the universal fragment (ACTL): {formula}"
            ),
            RefinementError::RestrictionNotPropositional { what } => {
                write!(f, "restriction is not propositional: {what}")
            }
            RefinementError::SimulationFailed {
                premise,
                counterexample,
            } => write!(f, "simulation premise {premise} failed: {counterexample}"),
            RefinementError::CircularBaseCaseFailed { reason } => {
                write!(f, "circular discharge rejected: {reason}")
            }
            RefinementError::Check(m) => write!(f, "refinement check error: {m}"),
        }
    }
}

impl std::error::Error for RefinementError {}

fn is_universal(f: &Formula) -> bool {
    use Formula::*;
    match f {
        True | False | Ap(_) => true,
        // Negation (and the connectives that hide one) is only allowed
        // on propositional subformulas — ¬ under a path quantifier would
        // flip it to the existential fragment.
        Not(g) => g.is_propositional(),
        Iff(a, b) => a.is_propositional() && b.is_propositional(),
        Implies(a, b) => a.is_propositional() && is_universal(b),
        And(a, b) | Or(a, b) => is_universal(a) && is_universal(b),
        Ax(g) | Ag(g) | Af(g) => is_universal(g),
        Au(a, b) => is_universal(a) && is_universal(b),
        Ex(_) | Ef(_) | Eg(_) | Eu(..) => false,
    }
}

/// Require `f` to lie in the universal fragment (ACTL): `AX/AG/AF/AU`
/// over `∧/∨`, with negation confined to propositional subformulas.
/// Universal properties are exactly the ones preserved downwards through
/// a simulation — the abstraction over-approximates behaviour, so
/// whatever holds on *all* its paths holds on the concrete paths they
/// cover; an existential witness on the abstract side need not exist
/// concretely.
pub fn require_universal(f: &Formula) -> Result<(), RefinementError> {
    if is_universal(f) {
        Ok(())
    } else {
        Err(RefinementError::NotUniversal {
            formula: f.to_string(),
        })
    }
}

/// The soundness side conditions of the **abstraction substitution rule**:
/// to conclude `C ∘ rest ⊨_r f` from `C ⊑ A` and `A ∘ rest ⊨_r f`, all of
/// the following must hold:
///
/// 1. `Σ_A ⊆ Σ_C` — the abstraction only *forgets* state, never invents
///    propositions the component does not have.
/// 2. `Σ_C ∩ Σ_rest ⊆ Σ_A` — every proposition the component shares with
///    its context survives abstraction. Dropping a shared proposition is
///    unsound: a concrete move toggling it would be invisible abstractly,
///    so the substituted composition would miss real interactions.
/// 3. `props(f) ∪ props(r) ⊆ Σ_A ∪ Σ_rest` — the property and restriction
///    only read surviving state.
/// 4. `f` is universal ([`require_universal`]) and `r` is propositional —
///    the preservation theorem transfers exactly ACTL over state-local
///    restrictions.
pub fn substitution_side_conditions(
    component: &str,
    concrete: &System,
    abstraction: &System,
    rest: &[&System],
    r: &Restriction,
    f: &Formula,
) -> Result<(), RefinementError> {
    let sigma_c = concrete.alphabet();
    let sigma_a = abstraction.alphabet();
    if !sigma_a.is_subset_of(sigma_c) {
        return Err(RefinementError::AlphabetNotSubset {
            component: component.to_string(),
            missing: sigma_a.difference(sigma_c),
        });
    }
    let mut dropped: Vec<String> = sigma_c
        .names()
        .iter()
        .filter(|p| !sigma_a.contains(p))
        .filter(|p| rest.iter().any(|m| m.alphabet().contains(p)))
        .cloned()
        .collect();
    dropped.sort();
    if !dropped.is_empty() {
        return Err(RefinementError::SharedPropositionDropped {
            component: component.to_string(),
            props: dropped,
        });
    }
    let surviving = rest
        .iter()
        .fold(sigma_a.clone(), |acc, m| acc.union(m.alphabet()));
    let mut out_of_scope: Vec<String> = f
        .atomic_props()
        .into_iter()
        .chain(r.init.atomic_props())
        .chain(r.fairness.iter().flat_map(|g| g.atomic_props()))
        .filter(|p| !surviving.contains(p))
        .collect();
    out_of_scope.sort();
    out_of_scope.dedup();
    if !out_of_scope.is_empty() {
        return Err(RefinementError::PropertyOutsideAbstraction {
            props: out_of_scope,
        });
    }
    require_universal(f)?;
    if !r.init.is_propositional() {
        return Err(RefinementError::RestrictionNotPropositional {
            what: format!("I = {}", r.init),
        });
    }
    for g in &r.fairness {
        if !g.is_propositional() {
            return Err(RefinementError::RestrictionNotPropositional {
                what: format!("fairness constraint {g}"),
            });
        }
    }
    Ok(())
}

/// Evidence of a successful **circular assume-guarantee** discharge: both
/// cross premises held, and the base case is genuinely inhabited.
#[derive(Debug, Clone)]
pub struct CircularDischarge {
    /// Premise `C₁ ∘ A₂ ⊑ A₁ ∘ A₂`, with the engine that decided it.
    pub h1: (SimulationOutcome, BackendKind),
    /// Premise `A₁ ∘ C₂ ⊑ A₁ ∘ A₂`, with the engine that decided it.
    pub h2: (SimulationOutcome, BackendKind),
    /// Number of assignments over the base case's own propositions that
    /// satisfy it (> 0 by construction — a vacuous base is rejected).
    pub base_states: u128,
}

/// Widest base-case support the satisfiability sweep will enumerate.
const MAX_BASE_PROPS: usize = 24;

/// The **circular assume-guarantee rule**: conclude
/// `C₁ ∘ C₂ ⊑ A₁ ∘ A₂` from the two cross premises
///
/// ```text
/// H1:  C₁ ∘ A₂ ⊑ A₁ ∘ A₂        H2:  A₁ ∘ C₂ ⊑ A₁ ∘ A₂
/// ```
///
/// Each premise lets one concrete component lean on the *other's
/// abstraction* — that mutual dependency is what makes the rule circular,
/// and in general such circles are unsound. Here the conclusion is
/// grounded twice over:
///
/// * **Projection factoring.** In the paper's stutter-closed all-states
///   semantics with `Σ_Aᵢ ⊆ Σ_Cᵢ`, a `C₁`-move inside the full
///   composition changes only `Σ_C₁` bits, so its projection onto
///   `Σ_A₁ ∪ Σ_A₂` factors through the projection onto `Σ_C₁ ∪ Σ_A₂` —
///   an instance H1 quantifies over (H1 ranges over *all* states,
///   i.e. every padding of the context bits). Symmetrically for `C₂`
///   via H2. Induction over moves is therefore well-founded.
/// * **Base case.** `base` (the restriction's `I` in engine use) must be
///   propositional, read only surviving propositions, and be
///   *satisfiable* — a vacuous discharge (no state satisfies the base)
///   proves nothing and is rejected with
///   [`RefinementError::CircularBaseCaseFailed`], never reported as a
///   success.
///
/// Any violated side condition or failed premise returns a typed
/// [`RefinementError`]; a wrong verdict is never produced.
pub fn circular_refines(
    choice: BackendChoice,
    c1: &System,
    a1: &System,
    c2: &System,
    a2: &System,
    base: &Formula,
) -> Result<CircularDischarge, RefinementError> {
    for (name, c, a) in [("C1", c1, a1), ("C2", c2, a2)] {
        if !a.alphabet().is_subset_of(c.alphabet()) {
            return Err(RefinementError::AlphabetNotSubset {
                component: name.to_string(),
                missing: a.alphabet().difference(c.alphabet()),
            });
        }
    }
    // Base case: propositional, in scope, and inhabited.
    if !base.is_propositional() {
        return Err(RefinementError::CircularBaseCaseFailed {
            reason: format!("base case {base} is not propositional"),
        });
    }
    let abstract_union = a1.alphabet().union(a2.alphabet());
    let base_props: Vec<String> = base.atomic_props().into_iter().collect();
    if let Some(p) = base_props.iter().find(|p| !abstract_union.contains(p)) {
        return Err(RefinementError::CircularBaseCaseFailed {
            reason: format!("base case reads proposition {p:?} outside the abstract alphabet"),
        });
    }
    if base_props.len() > MAX_BASE_PROPS {
        return Err(RefinementError::CircularBaseCaseFailed {
            reason: format!(
                "base case reads {} propositions (limit {MAX_BASE_PROPS})",
                base_props.len()
            ),
        });
    }
    let base_alpha = Alphabet::new(base_props);
    let base_states = (0u128..1 << base_alpha.len())
        .filter(|&s| base.eval_in_state(&base_alpha, State(s)))
        .count() as u128;
    if base_states == 0 {
        return Err(RefinementError::CircularBaseCaseFailed {
            reason: format!("base case {base} is unsatisfiable — the discharge would be vacuous"),
        });
    }
    // The two cross premises, each against the joint abstraction.
    let spec = a1.compose(a2);
    let h1 = check_refines(choice, &c1.compose(a2), &spec)
        .map_err(|e| RefinementError::Check(e.to_string()))?;
    if let Some(cx) = h1.0.counterexample() {
        return Err(RefinementError::SimulationFailed {
            premise: "C1 ∘ A2 ⊑ A1 ∘ A2".to_string(),
            counterexample: cx.display(c1.compose(a2).alphabet()),
        });
    }
    let h2 = check_refines(choice, &a1.compose(c2), &spec)
        .map_err(|e| RefinementError::Check(e.to_string()))?;
    if let Some(cx) = h2.0.counterexample() {
        return Err(RefinementError::SimulationFailed {
            premise: "A1 ∘ C2 ⊑ A1 ∘ A2".to_string(),
            counterexample: cx.display(a1.compose(c2).alphabet()),
        });
    }
    Ok(CircularDischarge {
        h1,
        h2,
        base_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::parse;
    use cmc_kripke::Alphabet;

    /// Helpful component: in p-states, a transition to q is always enabled.
    fn helpful() -> System {
        let mut m = System::new(Alphabet::new(["p", "q"]));
        // p ∧ ¬q -> q (helpful move); also p∧q etc. handled by stutter.
        m.add_transition_named(&["p"], &["q"]);
        m.add_transition_named(&["p", "q"], &["q"]);
        m
    }

    #[test]
    fn rule4_constructs_guarantee() {
        let m = helpful();
        let g = rule4(&m, &parse("p").unwrap(), &parse("q").unwrap()).unwrap();
        assert_eq!(g.lhs.len(), 1);
        assert_eq!(g.rhs.len(), 2);
        assert!(g.lhs[0].1.is_trivial());
        assert_eq!(g.rhs[0].1.fairness, vec![parse("!p | q").unwrap()]);
        assert!(g.provenance.contains("Rule 4"));
        let shown = g.to_string();
        assert!(shown.contains("requires"));
        assert!(shown.contains("ensures"));
    }

    #[test]
    fn rule4_premise_checked() {
        // A system with NO p -> q move: premise p ⇒ EX q fails (state
        // {p} has only the stutter successor).
        let m = System::new(Alphabet::new(["p", "q"]));
        let err = rule4(&m, &parse("p").unwrap(), &parse("q").unwrap()).unwrap_err();
        assert!(matches!(err, RuleError::PremiseFailed(_)));
    }

    #[test]
    fn rule4_requires_propositional() {
        let m = helpful();
        let err = rule4(&m, &parse("EF p").unwrap(), &parse("q").unwrap()).unwrap_err();
        assert!(matches!(err, RuleError::NotPropositional(_)));
    }

    #[test]
    fn rule5_constructs_guarantee_with_ef_obligations() {
        let m = helpful();
        let cover = vec![parse("p & !q").unwrap(), parse("p & q").unwrap()];
        let g = rule5(&m, &cover, 1, &parse("q").unwrap()).unwrap();
        // 1 AX obligation + 2 EF obligations.
        assert_eq!(g.lhs.len(), 3);
        assert!(g.lhs[1].0.to_string().contains("EF"));
        assert_eq!(g.rhs.len(), 2);
    }

    #[test]
    fn rule5_validates_cover() {
        let m = helpful();
        assert!(matches!(
            rule5(&m, &[], 0, &parse("q").unwrap()),
            Err(RuleError::BadCover(_))
        ));
        let cover = vec![parse("p").unwrap()];
        assert!(matches!(
            rule5(&m, &cover, 5, &parse("q").unwrap()),
            Err(RuleError::BadCover(_))
        ));
    }

    #[test]
    fn rule5_premise_on_helpful_disjunct() {
        let m = helpful();
        // Helpful disjunct p∧¬q does have an EX q move in `helpful`.
        let cover = vec![parse("p & !q").unwrap()];
        assert!(rule5(&m, &cover, 0, &parse("q").unwrap()).is_ok());
        // But a disjunct without the move fails.
        let mut no_move = System::new(Alphabet::new(["p", "q"]));
        no_move.add_transition_named(&["q"], &["p"]);
        let err = rule5(&no_move, &cover, 0, &parse("q").unwrap()).unwrap_err();
        assert!(matches!(err, RuleError::PremiseFailed(_)));
    }

    /// Toggler on `name` with a private scratch bit `scratch`.
    fn scratch_toggler(name: &str, scratch: &str) -> System {
        let mut m = System::new(Alphabet::new([name, scratch]));
        m.add_transition_named(&[], &[scratch]);
        m.add_transition_named(&[scratch], &[scratch, name]);
        m.add_transition_named(&[scratch, name], &[name]);
        m.add_transition_named(&[name], &[]);
        m
    }

    #[test]
    fn universal_fragment_is_classified_correctly() {
        for text in [
            "AG (p -> AX q)",
            "AF q",
            "A [p U q]",
            "!p | AG q",
            "p -> AG (q | !p)",
        ] {
            assert!(require_universal(&parse(text).unwrap()).is_ok(), "{text}");
        }
        for text in ["EF p", "AG EF p", "!AG p", "!(p & AX q)", "p <-> AG q"] {
            assert!(
                matches!(
                    require_universal(&parse(text).unwrap()),
                    Err(RefinementError::NotUniversal { .. })
                ),
                "{text} should be rejected"
            );
        }
    }

    #[test]
    fn substitution_side_conditions_reject_each_unsoundness() {
        let c = scratch_toggler("x", "s");
        let a = c.project(&Alphabet::new(["x"]));
        let ctx = System::new(Alphabet::new(["y"]));
        let r = Restriction::trivial();
        let f = parse("AG (x -> x)").unwrap();
        assert!(substitution_side_conditions("C", &c, &a, &[&ctx], &r, &f).is_ok());
        // 1. Abstraction inventing propositions.
        let alien = System::new(Alphabet::new(["x", "alien"]));
        assert!(matches!(
            substitution_side_conditions("C", &c, &alien, &[&ctx], &r, &f),
            Err(RefinementError::AlphabetNotSubset { missing, .. }) if missing == vec!["alien"]
        ));
        // 2. Dropping a proposition shared with the context.
        let shares_s = System::new(Alphabet::new(["s"]));
        assert!(matches!(
            substitution_side_conditions("C", &c, &a, &[&shares_s], &r, &f),
            Err(RefinementError::SharedPropositionDropped { props, .. }) if props == vec!["s"]
        ));
        // 3. Property reading dropped state.
        let reads_s = parse("AG (s -> s)").unwrap();
        assert!(matches!(
            substitution_side_conditions("C", &c, &a, &[&ctx], &r, &reads_s),
            Err(RefinementError::PropertyOutsideAbstraction { props }) if props == vec!["s"]
        ));
        // 4. Existential property.
        assert!(matches!(
            substitution_side_conditions("C", &c, &a, &[&ctx], &r, &parse("EF x").unwrap()),
            Err(RefinementError::NotUniversal { .. })
        ));
        // 5. Temporal restriction.
        let bad_r = Restriction::with_init(parse("AG x").unwrap());
        assert!(matches!(
            substitution_side_conditions("C", &c, &a, &[&ctx], &bad_r, &f),
            Err(RefinementError::RestrictionNotPropositional { .. })
        ));
    }

    #[test]
    fn circular_discharge_closes_on_cross_projections() {
        let c1 = scratch_toggler("x", "s1");
        let a1 = c1.project(&Alphabet::new(["x"]));
        let c2 = scratch_toggler("y", "s2");
        let a2 = c2.project(&Alphabet::new(["y"]));
        let out = circular_refines(
            BackendChoice::Auto,
            &c1,
            &a1,
            &c2,
            &a2,
            &parse("!x & !y").unwrap(),
        )
        .unwrap();
        assert!(out.h1.0.holds() && out.h2.0.holds());
        assert_eq!(out.base_states, 1);
    }

    #[test]
    fn unsound_circular_discharges_are_rejected_with_typed_errors() {
        let c1 = scratch_toggler("x", "s1");
        let a1 = c1.project(&Alphabet::new(["x"]));
        let c2 = scratch_toggler("y", "s2");
        let a2 = c2.project(&Alphabet::new(["y"]));
        // Vacuous base case: no state satisfies it, so the "discharge"
        // would prove nothing — typed rejection, not a green verdict.
        let err = circular_refines(
            BackendChoice::Auto,
            &c1,
            &a1,
            &c2,
            &a2,
            &parse("x & !x").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RefinementError::CircularBaseCaseFailed { .. }
        ));
        // Base case reading dropped (non-abstract) state.
        let err = circular_refines(
            BackendChoice::Auto,
            &c1,
            &a1,
            &c2,
            &a2,
            &parse("s1").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RefinementError::CircularBaseCaseFailed { .. }
        ));
        // A failed premise names itself and carries the counterexample:
        // a one-way riser cannot track the toggler's descent.
        let mut riser = System::new(Alphabet::new(["x"]));
        riser.add_transition_named(&[], &["x"]);
        let err = circular_refines(BackendChoice::Auto, &c1, &riser, &c2, &a2, &Formula::True)
            .unwrap_err();
        match err {
            RefinementError::SimulationFailed {
                premise,
                counterexample,
            } => {
                assert_eq!(premise, "C1 ∘ A2 ⊑ A1 ∘ A2");
                assert!(!counterexample.is_empty());
            }
            other => panic!("expected SimulationFailed, got {other:?}"),
        }
        // An abstraction inventing state is refused before any checking.
        let alien = System::new(Alphabet::new(["y", "alien"]));
        let err = circular_refines(BackendChoice::Auto, &c1, &a1, &c2, &alien, &Formula::True)
            .unwrap_err();
        assert!(matches!(err, RefinementError::AlphabetNotSubset { .. }));
    }

    #[test]
    fn invariant_obligations_shapes() {
        let (uni, validity) =
            invariant_obligations(&parse("a -> b").unwrap(), &parse("!a").unwrap()).unwrap();
        assert_eq!(uni.to_string(), "(a -> b) -> AX (a -> b)");
        // `->` is right-associative, so the nested implication needs no
        // parentheses when printed.
        assert_eq!(validity.to_string(), "!a -> a -> b");
        assert!(matches!(
            invariant_obligations(&parse("AG a").unwrap(), &Formula::True),
            Err(RuleError::NotPropositional(_))
        ));
    }
}
