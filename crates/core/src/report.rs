//! Rendering proof certificates as shareable reports.
//!
//! The paper's proposed workflow has the *component developer* ship proofs
//! alongside the component ("including theorems and proofs in the
//! documentation", §5). This module renders [`crate::Certificate`]s as
//! Markdown so certificates can be dropped into a component's docs, and
//! aggregates several certificates into one verification report.

use crate::engine::Certificate;
use std::fmt::Write;

impl Certificate {
    /// Render as a Markdown section with a step table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.goal);
        let _ = writeln!(out);
        let _ = writeln!(out, "| # | step | scope | result |");
        let _ = writeln!(out, "|---|------|-------|--------|");
        for (i, s) in self.steps.iter().enumerate() {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} |",
                i + 1,
                s.description.replace('|', "\\|"),
                if s.compositional {
                    "component-local"
                } else {
                    "whole-system"
                },
                if s.ok { "ok" } else { "**FAIL**" }
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "**Verdict:** {}{}",
            if self.valid {
                "established"
            } else {
                "NOT established"
            },
            if self.valid && self.fully_compositional() {
                " (fully compositional — no whole-system model checking needed)"
            } else {
                ""
            }
        );
        out
    }
}

/// A bundle of certificates rendered as one report.
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    /// Report title.
    pub title: String,
    /// The certificates, in presentation order.
    pub certificates: Vec<Certificate>,
}

impl VerificationReport {
    /// Create an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        VerificationReport {
            title: title.into(),
            certificates: Vec::new(),
        }
    }

    /// Append a certificate.
    pub fn push(&mut self, cert: Certificate) {
        self.certificates.push(cert);
    }

    /// Do all certificates hold?
    pub fn all_valid(&self) -> bool {
        self.certificates.iter().all(|c| c.valid)
    }

    /// Render the whole report as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} obligation(s); {}.",
            self.certificates.len(),
            if self.all_valid() {
                "all established"
            } else {
                "SOME FAILED"
            }
        );
        let _ = writeln!(out);
        for c in &self.certificates {
            out.push_str(&c.to_markdown());
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Component, Engine};
    use cmc_ctl::{parse, Restriction};
    use cmc_kripke::{Alphabet, System};

    fn sample_cert(valid: bool) -> Certificate {
        let mut m = System::new(Alphabet::new(["x"]));
        m.add_transition_named(&[], &["x"]);
        let e = Engine::new(vec![Component::new("mx", m)]);
        let f = if valid { "x -> AX x" } else { "x -> AX !x" };
        e.prove(&Restriction::trivial(), &parse(f).unwrap())
            .unwrap()
    }

    #[test]
    fn markdown_contains_table_and_verdict() {
        let md = sample_cert(true).to_markdown();
        assert!(md.starts_with("### system"));
        assert!(md.contains("| # | step | scope | result |"));
        assert!(md.contains("component-local"));
        assert!(md.contains("**Verdict:** established"));
        assert!(md.contains("fully compositional"));
    }

    #[test]
    fn failing_certificate_marked() {
        let md = sample_cert(false).to_markdown();
        assert!(md.contains("**FAIL**"));
        assert!(md.contains("NOT established"));
    }

    #[test]
    fn report_aggregates() {
        let mut r = VerificationReport::new("AFS-1 verification");
        r.push(sample_cert(true));
        r.push(sample_cert(true));
        assert!(r.all_valid());
        let md = r.to_markdown();
        assert!(md.starts_with("# AFS-1 verification"));
        assert!(md.contains("2 obligation(s); all established."));
        r.push(sample_cert(false));
        assert!(!r.all_valid());
        assert!(r.to_markdown().contains("SOME FAILED"));
    }
}
