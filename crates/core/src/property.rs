//! Property classification: universal, existential, and guarantees
//! properties (§3.3 of the paper).
//!
//! * A property `f` is **existential** when `M ⊨_r f ⇒ M ∘ M' ⊨_r f` for
//!   any `M'` — it transfers from *any one* component to the composition.
//! * A property is **universal** when
//!   `M ⊨_r f ∧ M' ⊨_r f ⇒ M ∘ M' ⊨_r f` — it transfers when *all*
//!   components have it.
//! * A **guarantees** property `f guarantees_r' g` of a component means:
//!   for any composition containing the component, if the *composed system*
//!   satisfies `f` then it satisfies `g` under `r'`. Guarantees properties
//!   are themselves existential (inherited by any containing system).
//!
//! The classifier implements the paper's syntactic rules:
//!
//! * **Rule 1** — a propositional formula under `r = (I, {true})` is
//!   existential.
//! * **Rule 2** — `p ⇒ AX q` with `p`, `q` propositional is universal.
//! * **Rule 3** — `p ⇒ EX q` with `p`, `q` propositional is existential.
//!
//! Conjunctions of universally classified formulas are universal (shown by
//! applying Rule 2 conjunct-wise, as the paper does for (Cli3)/(Srv3));
//! likewise the paper freely conjoins Rule-1/Rule-3 existentials checked on
//! the *same* component, which is sound because both conjuncts transfer
//! from that one component.

use cmc_ctl::{Formula, Restriction};

/// How a property transfers through composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyClass {
    /// Transfers when every component satisfies it (Rule 2 shapes).
    Universal,
    /// Transfers from any single component (Rule 1 / Rule 3 shapes).
    Existential,
}

/// The syntactic rule that justified a classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassRule {
    /// Rule 1: propositional formula, trivial fairness.
    Rule1Propositional,
    /// Rule 2: `p ⇒ AX q`.
    Rule2NextUniversal,
    /// Rule 3: `p ⇒ EX q`.
    Rule3NextExistential,
    /// Extension of Rules 1/3: positive-existential formula (closed under
    /// ∧, ∨, EX, EF, EG, EU) — sound by relation monotonicity.
    PositiveExistential,
    /// Conjunction of like-classified conjuncts.
    Conjunction,
}

/// A classification result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classified {
    /// Universal or existential.
    pub class: PropertyClass,
    /// The justifying rule (outermost).
    pub rule: ClassRule,
}

/// Classify a formula under a restriction by the paper's rules.
/// Returns `None` when no rule applies (the property may still be provable
/// via a guarantees property — see [`crate::rules`]).
pub fn classify(f: &Formula, r: &Restriction) -> Option<Classified> {
    let trivially_fair = r.fairness.iter().all(|c| *c == Formula::True);

    // Rule 2 / Rule 3: p ⇒ AX q / p ⇒ EX q. The paper proves these for
    // plain ⊨; Lemma 11 extends p ⇒ AX q to stronger fairness, so Rule 2
    // also applies under any fairness (the satisfaction we *assume* for the
    // components uses the same restriction).
    if let Some(c) = classify_next_shape(f) {
        return Some(c);
    }

    // Rule 1: propositional under (I, {true}).
    if trivially_fair && f.is_propositional() {
        return Some(Classified {
            class: PropertyClass::Existential,
            rule: ClassRule::Rule1Propositional,
        });
    }

    // Extension (Rule 3+): positive-existential formulas. The paper
    // explicitly makes "no claim of completeness"; this generalisation is
    // sound by relation monotonicity — see [`is_positive_existential`].
    if is_positive_existential(f) {
        return Some(Classified {
            class: PropertyClass::Existential,
            rule: ClassRule::PositiveExistential,
        });
    }

    // Conjunctions: all conjuncts must classify to the same class.
    if let Formula::And(a, b) = f {
        let ca = classify(a, r)?;
        let cb = classify(b, r)?;
        if ca.class == cb.class {
            return Some(Classified {
                class: ca.class,
                rule: ClassRule::Conjunction,
            });
        }
        // A universal conjoined with an existential does not transfer by
        // these rules.
        return None;
    }

    None
}

/// Is `f` **positive-existential**: built from propositional formulas by
/// `∧`, `∨`, `EX`, `EF`, `EG`, `EU`, and `prop ⇒ PE`?
///
/// Such formulas are preserved by *adding transitions*: every path of
/// `M`'s expansion is a path of `M ∘ M'` (the composed relation is a
/// superset), a fair path stays fair (fairness constrains the path
/// itself), and propositional parts transfer by Lemma 10. Hence
/// positive-existential properties are existential — a strict,
/// soundness-preserving generalisation of the paper's Rules 1 and 3
/// (tested against monolithic checking on random systems).
pub fn is_positive_existential(f: &Formula) -> bool {
    use Formula::*;
    if f.is_propositional() {
        return true;
    }
    match f {
        And(a, b) | Or(a, b) => is_positive_existential(a) && is_positive_existential(b),
        Implies(a, b) => a.is_propositional() && is_positive_existential(b),
        Ex(a) | Ef(a) | Eg(a) => is_positive_existential(a),
        Eu(a, b) => is_positive_existential(a) && is_positive_existential(b),
        _ => false,
    }
}

/// Match `p ⇒ AX q` (Rule 2) or `p ⇒ EX q` (Rule 3), `p`/`q` propositional.
fn classify_next_shape(f: &Formula) -> Option<Classified> {
    if let Formula::Implies(p, rest) = f {
        if !p.is_propositional() {
            return None;
        }
        match rest.as_ref() {
            Formula::Ax(q) if q.is_propositional() => {
                return Some(Classified {
                    class: PropertyClass::Universal,
                    rule: ClassRule::Rule2NextUniversal,
                })
            }
            Formula::Ex(q) if q.is_propositional() => {
                return Some(Classified {
                    class: PropertyClass::Existential,
                    rule: ClassRule::Rule3NextExistential,
                })
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::parse;

    fn trivial() -> Restriction {
        Restriction::trivial()
    }

    #[test]
    fn rule1_propositional_existential() {
        let c = classify(&parse("p -> q | !s").unwrap(), &trivial()).unwrap();
        assert_eq!(c.class, PropertyClass::Existential);
        assert_eq!(c.rule, ClassRule::Rule1Propositional);
    }

    #[test]
    fn propositional_under_fairness_via_extension() {
        // The paper's Rule 1 requires trivial fairness; the
        // positive-existential extension covers the fair case (fairness
        // cannot affect a propositional formula's satisfaction set).
        let r = Restriction::with_fairness([parse("p").unwrap()]);
        let c = classify(&parse("p | q").unwrap(), &r).unwrap();
        assert_eq!(c.class, PropertyClass::Existential);
        assert_eq!(c.rule, ClassRule::PositiveExistential);
    }

    #[test]
    fn rule2_ax_universal() {
        let c = classify(&parse("p -> AX (p | q)").unwrap(), &trivial()).unwrap();
        assert_eq!(c.class, PropertyClass::Universal);
        assert_eq!(c.rule, ClassRule::Rule2NextUniversal);
        // Also under fairness (Lemma 11).
        let r = Restriction::with_fairness([parse("!p | q").unwrap()]);
        assert!(classify(&parse("p -> AX (p | q)").unwrap(), &r).is_some());
    }

    #[test]
    fn rule3_ex_existential() {
        let c = classify(&parse("p -> EX q").unwrap(), &trivial()).unwrap();
        assert_eq!(c.class, PropertyClass::Existential);
        assert_eq!(c.rule, ClassRule::Rule3NextExistential);
    }

    #[test]
    fn temporal_antecedent_rejected() {
        assert_eq!(classify(&parse("EF p -> AX q").unwrap(), &trivial()), None);
        assert_eq!(classify(&parse("p -> AX EF q").unwrap(), &trivial()), None);
    }

    #[test]
    fn conjunction_of_universals() {
        let f = parse("(p -> AX p) & (q -> AX (q | p))").unwrap();
        let c = classify(&f, &trivial()).unwrap();
        assert_eq!(c.class, PropertyClass::Universal);
        assert_eq!(c.rule, ClassRule::Conjunction);
    }

    #[test]
    fn conjunction_of_existentials() {
        let f = parse("(p -> EX q) & (q -> EX p)").unwrap();
        let c = classify(&f, &trivial()).unwrap();
        assert_eq!(c.class, PropertyClass::Existential);
    }

    #[test]
    fn mixed_conjunction_unclassified() {
        let f = parse("(p -> AX p) & (q -> EX p)").unwrap();
        assert_eq!(classify(&f, &trivial()), None);
    }

    #[test]
    fn ag_and_liveness_unclassified() {
        // AG/AF shapes are not covered by Rules 1–3; they are handled by
        // the invariant/guarantee machinery instead.
        assert_eq!(classify(&parse("AG (p -> q)").unwrap(), &trivial()), None);
        assert_eq!(classify(&parse("p -> AF q").unwrap(), &trivial()), None);
    }

    #[test]
    fn positive_existential_shapes() {
        for text in [
            "EF (p & q)",
            "E [p U q | s]",
            "p -> EF (q & EX s)",
            "EG p | EF q",
            "EX EX p",
        ] {
            let c = classify(&parse(text).unwrap(), &trivial()).unwrap();
            assert_eq!(c.class, PropertyClass::Existential, "{text}");
        }
        // Negation over a temporal operator breaks positivity.
        assert!(!is_positive_existential(&parse("!EF p").unwrap()));
        assert!(!is_positive_existential(&parse("EF !EX p").unwrap()));
        // A-operators are not existential.
        assert!(!is_positive_existential(&parse("AF p").unwrap()));
        // Temporal antecedents are not allowed.
        assert!(!is_positive_existential(&parse("EF p -> EF q").unwrap()));
        // But negation *inside* the propositional layer is fine.
        assert!(is_positive_existential(&parse("EF (!p & q)").unwrap()));
    }

    #[test]
    fn paper_cli3_srv3_shapes_are_universal() {
        // Figure 6's Srv3: three conjoined p ⇒ AX q properties.
        let srv3 =
            parse("(r=null -> AX r=null) & (r=val -> AX r=val) & (r=inval -> AX r=inval)").unwrap();
        let c = classify(&srv3, &trivial()).unwrap();
        assert_eq!(c.class, PropertyClass::Universal);
    }
}
