//! Parallel component verification.
//!
//! The compositional method's practical selling point (Discussion §5) is
//! that verification cost is *linear* in the number of components — and the
//! per-component checks are independent, so they parallelise perfectly.
//! This module fans component checks out over scoped threads (crossbeam),
//! aggregating results under a `parking_lot` mutex.

use cmc_ctl::{Checker, Formula};
use cmc_kripke::{Alphabet, System};
use parking_lot::Mutex;

/// Check `⊨ f` (all states) on each system concurrently. Returns
/// `(name, verdict-or-error)` in input order.
pub fn check_holds_everywhere_parallel(
    names: &[String],
    systems: &[System],
    f: &Formula,
) -> Vec<(String, Result<bool, String>)> {
    assert_eq!(names.len(), systems.len());
    let results: Mutex<Vec<Option<Result<bool, String>>>> =
        Mutex::new(vec![None; systems.len()]);
    crossbeam::scope(|scope| {
        for (i, system) in systems.iter().enumerate() {
            let results = &results;
            let f = &*f;
            scope.spawn(move |_| {
                let outcome = Checker::new(system)
                    .and_then(|c| c.holds_everywhere(f))
                    .map_err(|e| e.to_string());
                results.lock()[i] = Some(outcome);
            });
        }
    })
    .expect("component verification thread panicked");
    let collected = results.into_inner();
    names
        .iter()
        .cloned()
        .zip(collected.into_iter().map(|r| r.expect("all slots filled")))
        .collect()
}

/// Run heterogeneous check tasks concurrently: each task is a labelled
/// `⊨ f` (all states) check of one formula on one system. Returns results
/// in task order.
pub fn check_tasks_parallel(
    tasks: &[(String, System, Formula)],
) -> Vec<(String, Result<bool, String>)> {
    let results: Mutex<Vec<Option<Result<bool, String>>>> = Mutex::new(vec![None; tasks.len()]);
    crossbeam::scope(|scope| {
        for (i, (_, system, f)) in tasks.iter().enumerate() {
            let results = &results;
            scope.spawn(move |_| {
                let outcome = Checker::new(system)
                    .and_then(|c| c.holds_everywhere(f))
                    .map_err(|e| e.to_string());
                results.lock()[i] = Some(outcome);
            });
        }
    })
    .expect("check task thread panicked");
    let collected = results.into_inner();
    tasks
        .iter()
        .map(|(name, _, _)| name.clone())
        .zip(collected.into_iter().map(|r| r.expect("all slots filled")))
        .collect()
}

/// Decide propositional validity of `f` over all states of `alphabet`
/// (used for the `I ⇒ Inv` obligation of the invariant rule).
pub fn propositional_validity(alphabet: &Alphabet, f: &Formula) -> bool {
    debug_assert!(f.is_propositional());
    cmc_kripke::state::all_states(alphabet).all(|s| f.eval_in_state(alphabet, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::parse;

    fn rising(name: &str) -> System {
        let mut m = System::new(Alphabet::new([name]));
        m.add_transition_named(&[], &[name]);
        m
    }

    #[test]
    fn parallel_checks_match_sequential() {
        let systems: Vec<System> = (0..8).map(|i| rising(&format!("v{i}"))).collect();
        let names: Vec<String> = (0..8).map(|i| format!("c{i}")).collect();
        // v0 ⇒ AX v0 — true for c0 (it owns v0 and never clears it) and
        // errors for others (unknown proposition), proving per-component
        // isolation of errors.
        let f = parse("v0 -> AX v0").unwrap();
        let results = check_holds_everywhere_parallel(&names, &systems, &f);
        assert_eq!(results.len(), 8);
        assert_eq!(results[0].1, Ok(true));
        for (_, r) in &results[1..] {
            assert!(r.is_err());
        }
    }

    #[test]
    fn parallel_order_is_stable() {
        let systems: Vec<System> = (0..4).map(|_| rising("x")).collect();
        let names: Vec<String> = (0..4).map(|i| format!("c{i}")).collect();
        let f = parse("x -> AX x").unwrap();
        let results = check_holds_everywhere_parallel(&names, &systems, &f);
        let got: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(got, vec!["c0", "c1", "c2", "c3"]);
        assert!(results.iter().all(|(_, r)| *r == Ok(true)));
    }

    #[test]
    fn propositional_validity_decides_tautologies() {
        let al = Alphabet::new(["a", "b"]);
        assert!(propositional_validity(&al, &parse("a | !a").unwrap()));
        assert!(propositional_validity(&al, &parse("a & b -> a").unwrap()));
        assert!(!propositional_validity(&al, &parse("a -> b").unwrap()));
    }
}
