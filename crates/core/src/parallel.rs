//! Parallel component verification.
//!
//! The compositional method's practical selling point (Discussion §5) is
//! that verification cost is *linear* in the number of components — and the
//! per-component checks are independent, so they parallelise perfectly.
//! This module fans component checks out over the bounded work-claiming
//! scheduler in [`crate::scheduler`]: at most `available_parallelism`
//! workers drain a shared task queue, so a 30-component proof keeps every
//! core busy without spawning 30 threads. A panic inside one component's
//! check degrades to an `Err` for that component only; the sibling checks
//! still report normally, and result order is the input order regardless
//! of worker count.

use crate::backend::{check_routed, BackendChoice, BackendKind, Target, Verdict};
use crate::scheduler;
use cmc_ctl::{Formula, Restriction};
use cmc_kripke::{Alphabet, System};
use cmc_store::{CertStore, Entry, ObligationKey};
use std::sync::Arc;

/// Check `⊨ f` (all states) on each system concurrently, routing each
/// check through the backend `choice` resolves for it. Returns
/// `(name, verdict-or-error)` in input order.
pub fn check_holds_everywhere_parallel(
    names: &[String],
    systems: &[System],
    f: &Formula,
    choice: BackendChoice,
) -> Vec<(String, Result<bool, String>)> {
    check_holds_everywhere_with_workers(names, systems, f, choice, scheduler::default_workers())
}

/// [`check_holds_everywhere_parallel`] with an explicit worker cap
/// (benchmarks sweep this; `1` gives the sequential baseline through the
/// identical code path).
pub fn check_holds_everywhere_with_workers(
    names: &[String],
    systems: &[System],
    f: &Formula,
    choice: BackendChoice,
    workers: usize,
) -> Vec<(String, Result<bool, String>)> {
    assert_eq!(names.len(), systems.len());
    let trivial = Restriction::trivial();
    let outcomes = scheduler::run_bounded(systems.len(), workers, |i| {
        let target = Target::system(systems[i].clone());
        check_routed(choice, &target, &trivial, f)
            .map(|v| v.holds)
            .map_err(|e| e.to_string())
    });
    names
        .iter()
        .cloned()
        .zip(outcomes.into_iter().map(|r| r.and_then(|inner| inner)))
        .collect()
}

/// Run heterogeneous check tasks concurrently: each task is a labelled
/// `⊨ f` (all states) check of one formula on one [`Target`], routed
/// through the backend `choice` resolves for that target. Returns full
/// [`Verdict`]s (or error messages) in task order.
pub fn check_targets_parallel(
    tasks: &[(String, Target, Formula)],
    choice: BackendChoice,
) -> Vec<(String, Result<Verdict, String>)> {
    check_targets_with_workers(tasks, choice, scheduler::default_workers())
}

/// [`check_targets_parallel`] with an explicit worker cap.
pub fn check_targets_with_workers(
    tasks: &[(String, Target, Formula)],
    choice: BackendChoice,
    workers: usize,
) -> Vec<(String, Result<Verdict, String>)> {
    let trivial = Restriction::trivial();
    let outcomes = scheduler::run_bounded(tasks.len(), workers, |i| {
        let (_, target, f) = &tasks[i];
        check_routed(choice, target, &trivial, f).map_err(|e| e.to_string())
    });
    tasks
        .iter()
        .map(|(name, _, _)| name.clone())
        .zip(outcomes.into_iter().map(|r| r.and_then(|inner| inner)))
        .collect()
}

/// Outcome of one obligation in a store-aware fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutOutcome {
    /// Does the obligation hold (over all states, trivial restriction)?
    pub holds: bool,
    /// Was the verdict served from the shared [`CertStore`] instead of
    /// being recomputed?
    pub store_hit: bool,
    /// The engine the cost model *planned* for this target (store keys
    /// are keyed by the plan, which is deterministic; a fallback at check
    /// time does not change the obligation's identity).
    pub backend: BackendKind,
}

/// [`check_targets_with_workers`], but exchanging verdicts through a
/// shared [`CertStore`]: each worker keys its obligation structurally
/// ([`ObligationKey::composed`], so duplicate obligations collide across
/// workers and across runs) and consults the store before checking.
///
/// This is the fixpoint-obligation fan-out of the partitioned engine:
/// every job that routes symbolic builds its **own** `SymbolicModel` — and
/// with it a private `BddManager` — inside the worker, so no BDD state is
/// shared between threads; the only cross-worker exchange is the verdict
/// entry in the store.
pub fn check_targets_with_store(
    tasks: &[(String, Target, Formula)],
    choice: BackendChoice,
    workers: usize,
    store: &Arc<CertStore>,
) -> Vec<(String, Result<FanoutOutcome, String>)> {
    let trivial = Restriction::trivial();
    let outcomes = scheduler::run_bounded(tasks.len(), workers, |i| {
        let (_, target, f) = &tasks[i];
        let kind = choice.route(target, &trivial).planned;
        let refs: Vec<&System> = target.systems().iter().collect();
        // The expansion alphabet is part of the obligation's identity (the
        // same components over a wider Σ* is a different target), so it
        // rides in the mode tag.
        let mode = format!("fanout/{}", target.extra().names().join(","));
        let key = ObligationKey::composed(&mode, kind.name(), &refs, &trivial, f);
        let (entry, store_hit) = store.get_or_check(key, || {
            check_routed(choice, target, &trivial, f)
                .map(|v| Entry::verdict(v.holds))
                .map_err(|e| e.to_string())
        })?;
        Ok(FanoutOutcome {
            holds: entry.verdict,
            store_hit,
            backend: kind,
        })
    });
    tasks
        .iter()
        .map(|(name, _, _)| name.clone())
        .zip(outcomes.into_iter().map(|r| r.and_then(|inner| inner)))
        .collect()
}

/// Decide propositional validity of `f` over all states of `alphabet`
/// (used for the `I ⇒ Inv` obligation of the invariant rule).
pub fn propositional_validity(alphabet: &Alphabet, f: &Formula) -> bool {
    debug_assert!(f.is_propositional());
    cmc_kripke::state::all_states(alphabet).all(|s| f.eval_in_state(alphabet, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::parse;

    fn rising(name: &str) -> System {
        let mut m = System::new(Alphabet::new([name]));
        m.add_transition_named(&[], &[name]);
        m
    }

    #[test]
    fn parallel_checks_match_sequential() {
        let systems: Vec<System> = (0..8).map(|i| rising(&format!("v{i}"))).collect();
        let names: Vec<String> = (0..8).map(|i| format!("c{i}")).collect();
        // v0 ⇒ AX v0 — true for c0 (it owns v0 and never clears it) and
        // errors for others (unknown proposition), proving per-component
        // isolation of errors.
        let f = parse("v0 -> AX v0").unwrap();
        let results = check_holds_everywhere_parallel(&names, &systems, &f, BackendChoice::Auto);
        assert_eq!(results.len(), 8);
        assert_eq!(results[0].1, Ok(true));
        for (_, r) in &results[1..] {
            assert!(r.is_err());
        }
    }

    #[test]
    fn parallel_order_is_stable() {
        let systems: Vec<System> = (0..4).map(|_| rising("x")).collect();
        let names: Vec<String> = (0..4).map(|i| format!("c{i}")).collect();
        let f = parse("x -> AX x").unwrap();
        let results = check_holds_everywhere_parallel(&names, &systems, &f, BackendChoice::Auto);
        let got: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(got, vec!["c0", "c1", "c2", "c3"]);
        assert!(results.iter().all(|(_, r)| *r == Ok(true)));
    }

    #[test]
    fn panicking_job_degrades_to_err_for_that_slot_only() {
        let results = scheduler::run(4, |i| {
            if i == 2 {
                panic!("injected fault in job {i}");
            }
            i * 10
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(results[1], Ok(10));
        assert_eq!(results[3], Ok(30));
        let err = results[2].as_ref().unwrap_err();
        assert!(err.contains("panicked"), "unexpected message: {err}");
        assert!(err.contains("injected fault"), "payload lost: {err}");
    }

    /// Scheduler determinism through the real checking path: every worker
    /// count yields byte-identical results in input order.
    #[test]
    fn results_identical_across_worker_counts() {
        let systems: Vec<System> = (0..10).map(|i| rising(&format!("w{i}"))).collect();
        let names: Vec<String> = (0..10).map(|i| format!("c{i}")).collect();
        let f = parse("w3 -> AX w3").unwrap();
        let baseline =
            check_holds_everywhere_with_workers(&names, &systems, &f, BackendChoice::Auto, 1);
        for workers in [2, 4, 8] {
            let got = check_holds_everywhere_with_workers(
                &names,
                &systems,
                &f,
                BackendChoice::Auto,
                workers,
            );
            assert_eq!(got, baseline, "worker count {workers}");
        }
    }

    #[test]
    fn store_fanout_memoizes_duplicate_obligations() {
        let store = Arc::new(cmc_store::CertStore::new());
        // Four tasks, but only two distinct obligations: duplicates must
        // be served from the store while fresh ones compute.
        let tasks: Vec<(String, Target, Formula)> = (0..4)
            .map(|i| {
                let v = if i % 2 == 0 { "x" } else { "y" };
                let f = parse(&format!("{v} -> AX {v}")).unwrap();
                (format!("t{i}"), Target::system(rising(v)), f)
            })
            .collect();
        let results = check_targets_with_store(&tasks, BackendChoice::Auto, 1, &store);
        assert_eq!(results.len(), 4);
        let o0 = results[0].1.as_ref().unwrap();
        assert!(o0.holds && !o0.store_hit);
        let o2 = results[2].1.as_ref().unwrap();
        assert!(o2.holds && o2.store_hit, "duplicate obligation recomputed");
        assert_eq!(store.len(), 2);
        // A second sweep over the same tasks is all hits, on any worker
        // count, with identical outcomes.
        for workers in [1, 2, 4] {
            let again = check_targets_with_store(&tasks, BackendChoice::Auto, workers, &store);
            for (name, r) in &again {
                let o = r.as_ref().unwrap();
                assert!(o.store_hit, "{name} missed a warm store");
                assert!(o.holds);
            }
        }
    }

    #[test]
    fn store_fanout_distinguishes_expansion_alphabets() {
        let store = Arc::new(cmc_store::CertStore::new());
        let sys = rising("x");
        let f = parse("x -> AX x").unwrap();
        let tasks = vec![
            ("plain".to_string(), Target::system(sys.clone()), f.clone()),
            (
                "expanded".to_string(),
                Target::expansion(sys, Alphabet::new(["z"])),
                f.clone(),
            ),
        ];
        let results = check_targets_with_store(&tasks, BackendChoice::Auto, 2, &store);
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        // Same components, same formula, different Σ* — two store entries.
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn propositional_validity_decides_tautologies() {
        let al = Alphabet::new(["a", "b"]);
        assert!(propositional_validity(&al, &parse("a | !a").unwrap()));
        assert!(propositional_validity(&al, &parse("a & b -> a").unwrap()));
        assert!(!propositional_validity(&al, &parse("a -> b").unwrap()));
    }
}
