//! Executable forms of the CTL composition lemmas of §3.2 (Lemmas 5–11).
//!
//! Together with `cmc_kripke::lemmas` (Lemmas 1–4), these let the test
//! suite — including property-based tests over random systems — confirm
//! every algebraic step the paper's theory rests on, and let the proof
//! engine double-check its own rewriting on concrete systems.

use cmc_ctl::{CheckError, Checker, Formula, Restriction};
use cmc_kripke::{Alphabet, State, System};

/// Lemma 5: expansion preserves properties. For `f ∈ C(Σ)`:
/// `M ⊨ f  ⇔  M ∘ (Σ', I) ⊨ f`.
pub fn lemma5_expansion_preserves(
    m: &System,
    sigma_prime: &Alphabet,
    f: &Formula,
) -> Result<bool, CheckError> {
    let lhs = Checker::new(m)?.holds_everywhere(f)?;
    let expanded = m.expand(sigma_prime);
    let rhs = Checker::new(&expanded)?.holds_everywhere(f)?;
    Ok(lhs == rhs)
}

/// Lemma 6: `M ⊨ (f ⇒ AX g)  ⇔  ∀s ⊨ f: ∀t ∈ R(s): t ⊨ g`
/// for propositional `f`, `g`.
pub fn lemma6_ax_structural(m: &System, f: &Formula, g: &Formula) -> Result<bool, CheckError> {
    let formula = f.clone().implies(g.clone().ax());
    let semantic = Checker::new(m)?.holds_everywhere(&formula)?;
    let structural = m.states().all(|s| {
        !f.eval_in_state(m.alphabet(), s)
            || m.successors(s)
                .into_iter()
                .all(|t| g.eval_in_state(m.alphabet(), t))
    });
    Ok(semantic == structural)
}

/// Lemma 7: `M ⊨ (f ⇒ EX g)  ⇔  ∀s ⊨ f: ∃t ∈ R(s): t ⊨ g`.
pub fn lemma7_ex_structural(m: &System, f: &Formula, g: &Formula) -> Result<bool, CheckError> {
    let formula = f.clone().implies(g.clone().ex());
    let semantic = Checker::new(m)?.holds_everywhere(&formula)?;
    let structural = m.states().all(|s| {
        !f.eval_in_state(m.alphabet(), s)
            || m.successors(s)
                .into_iter()
                .any(|t| g.eval_in_state(m.alphabet(), t))
    });
    Ok(semantic == structural)
}

/// Lemma 8: frame conjunction. For `p`, `q` over `Σ` and `p'` over
/// `Σ' − Σ`:
///
/// ```text
/// M ⊨ (p ⇒ AX q)  ⇒  M ∘ (Σ', I) ⊨ (p ∧ p' ⇒ AX (q ∧ p'))
/// M ⊨ (p ⇒ EX q)  ⇒  M ∘ (Σ', I) ⊨ (p ∧ p' ⇒ EX (q ∧ p'))
/// ```
pub fn lemma8_frame_conjunction(
    m: &System,
    sigma_prime: &Alphabet,
    p: &Formula,
    q: &Formula,
    p_prime: &Formula,
) -> Result<bool, CheckError> {
    let checker = Checker::new(m)?;
    let expanded = m.expand(sigma_prime);
    let echecker = Checker::new(&expanded)?;
    let mut ok = true;
    if checker.holds_everywhere(&p.clone().implies(q.clone().ax()))? {
        let lifted = p
            .clone()
            .and(p_prime.clone())
            .implies(q.clone().and(p_prime.clone()).ax());
        ok &= echecker.holds_everywhere(&lifted)?;
    }
    if checker.holds_everywhere(&p.clone().implies(q.clone().ex()))? {
        let lifted = p
            .clone()
            .and(p_prime.clone())
            .implies(q.clone().and(p_prime.clone()).ex());
        ok &= echecker.holds_everywhere(&lifted)?;
    }
    Ok(ok)
}

/// Lemma 9: frame disjunction. Under the same conditions:
///
/// ```text
/// M ⊨ (p ⇒ AX q)  ⇒  M ∘ (Σ', I) ⊨ ((p ∨ p') ⇒ AX (q ∨ p'))
/// M ⊨ (p ⇒ EX q)  ⇒  M ∘ (Σ', I) ⊨ ((p ∨ p') ⇒ EX (q ∨ p'))
/// ```
pub fn lemma9_frame_disjunction(
    m: &System,
    sigma_prime: &Alphabet,
    p: &Formula,
    q: &Formula,
    p_prime: &Formula,
) -> Result<bool, CheckError> {
    let checker = Checker::new(m)?;
    let expanded = m.expand(sigma_prime);
    let echecker = Checker::new(&expanded)?;
    let mut ok = true;
    if checker.holds_everywhere(&p.clone().implies(q.clone().ax()))? {
        let lifted = p
            .clone()
            .or(p_prime.clone())
            .implies(q.clone().or(p_prime.clone()).ax());
        ok &= echecker.holds_everywhere(&lifted)?;
    }
    if checker.holds_everywhere(&p.clone().implies(q.clone().ex()))? {
        let lifted = p
            .clone()
            .or(p_prime.clone())
            .implies(q.clone().or(p_prime.clone()).ex());
        ok &= echecker.holds_everywhere(&lifted)?;
    }
    Ok(ok)
}

/// Lemma 10: propositional transfer. For `Σ ⊆ Σ'`, `p ∈ C(Σ)`, and states
/// `s ∈ 2^Σ`, `s' ∈ 2^Σ'` with `s = s' ∩ Σ`: `M, s ⊨ p ⇔ M', s' ⊨ p`.
pub fn lemma10_propositional_transfer(
    sigma: &Alphabet,
    sigma_big: &Alphabet,
    p: &Formula,
    s_big: State,
) -> bool {
    assert!(sigma.is_subset_of(sigma_big));
    let s = s_big.project(sigma_big, sigma);
    p.eval_in_state(sigma, s) == p.eval_in_state(sigma_big, s_big)
}

/// Lemma 11: strengthening fairness preserves `f ⇒ AX g`:
/// `M ⊨ (f ⇒ AX g)  ⇒  M ⊨_{(true, F)} (f ⇒ AX g)`.
pub fn lemma11_fairness_strengthening(
    m: &System,
    f: &Formula,
    g: &Formula,
    fairness: &[Formula],
) -> Result<bool, CheckError> {
    let checker = Checker::new(m)?;
    let formula = f.clone().implies(g.clone().ax());
    if !checker.holds_everywhere(&formula)? {
        return Ok(true); // implication holds vacuously
    }
    let r = Restriction::with_fairness(fairness.iter().cloned());
    Ok(checker.check(&r, &formula)?.holds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::parse;

    fn chain() -> System {
        // ∅ -> {a} -> {a,b}, over {a, b}.
        let mut m = System::new(Alphabet::new(["a", "b"]));
        m.add_transition_named(&[], &["a"]);
        m.add_transition_named(&["a"], &["a", "b"]);
        m
    }

    #[test]
    fn lemma5_holds_for_corpus() {
        let m = chain();
        let extra = Alphabet::new(["z", "a"]); // overlapping expansion
        for text in ["a -> AX (a | b)", "EF (a & b)", "AG (b -> a)", "E [a U b]"] {
            assert!(
                lemma5_expansion_preserves(&m, &extra, &parse(text).unwrap()).unwrap(),
                "Lemma 5 failed for {text}"
            );
        }
    }

    #[test]
    fn lemma6_lemma7_structural_equivalence() {
        let m = chain();
        for (f, g) in [("a", "a | b"), ("!a", "a"), ("a & b", "b"), ("b", "a")] {
            assert!(lemma6_ax_structural(&m, &parse(f).unwrap(), &parse(g).unwrap()).unwrap());
            assert!(lemma7_ex_structural(&m, &parse(f).unwrap(), &parse(g).unwrap()).unwrap());
        }
    }

    #[test]
    fn lemma8_and_9_frame_preservation() {
        let m = chain();
        let extra = Alphabet::new(["z"]);
        let p = parse("a").unwrap();
        let q = parse("a").unwrap(); // a ⇒ AX a holds in `chain`
        let p_prime = parse("z").unwrap();
        assert!(lemma8_frame_conjunction(&m, &extra, &p, &q, &p_prime).unwrap());
        assert!(lemma9_frame_disjunction(&m, &extra, &p, &q, &p_prime).unwrap());
        // Negated frame formula too.
        let np = parse("!z").unwrap();
        assert!(lemma8_frame_conjunction(&m, &extra, &p, &q, &np).unwrap());
    }

    #[test]
    fn lemma10_transfer_all_states() {
        let sigma = Alphabet::new(["a", "b"]);
        let big = sigma.union(&Alphabet::new(["c"]));
        let p = parse("a & !b").unwrap();
        for bits in 0u128..8 {
            assert!(lemma10_propositional_transfer(
                &sigma,
                &big,
                &p,
                State(bits)
            ));
        }
    }

    #[test]
    fn lemma11_fairness_strengthening_holds() {
        let m = chain();
        let fairness = vec![parse("b").unwrap(), parse("a | b").unwrap()];
        assert!(lemma11_fairness_strengthening(
            &m,
            &parse("a").unwrap(),
            &parse("a").unwrap(),
            &fairness
        )
        .unwrap());
    }
}
