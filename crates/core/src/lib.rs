#![warn(missing_docs)]

//! # cmc-core — compositional model checking
//!
//! The primary contribution of *An Approach to Compositional Model
//! Checking* (Andrade & Sanders, 2002), as an executable library:
//!
//! * **Property classification** ([`property`]) — the universal /
//!   existential property classes and the syntactic Rules 1–3 of §3.3.
//! * **Progress and safety rules** ([`rules`]) — Rule 4 (weak fairness),
//!   Rule 5 (strong fairness) producing *guarantees properties*, and the
//!   invariant rule used throughout the case study.
//! * **The proof engine** ([`engine`]) — expands components over the
//!   composed alphabet (Lemma 5), model-checks component obligations (in
//!   parallel, [`parallel`]), transfers them by class, discharges
//!   guarantees, and emits auditable [`engine::Certificate`]s.
//! * **Executable lemmas** ([`lemmas`]) — decision procedures for Lemmas
//!   5–11 of §3.2 on concrete systems (Lemmas 1–4 live in
//!   `cmc_kripke::lemmas`), used by the property-based test-suite.
//!
//! ## Example: a compositional safety proof
//!
//! ```
//! use cmc_core::engine::{Component, Engine};
//! use cmc_ctl::parse;
//! use cmc_kripke::{Alphabet, System};
//!
//! // Component 1 raises `req`; component 2 raises `ack` only after `req`.
//! let mut requester = System::new(Alphabet::new(["req"]));
//! requester.add_transition_named(&[], &["req"]);
//! let mut responder = System::new(Alphabet::new(["req", "ack"]));
//! responder.add_transition_named(&["req"], &["req", "ack"]);
//!
//! let engine = Engine::new(vec![
//!     Component::new("requester", requester),
//!     Component::new("responder", responder),
//! ]);
//! // Invariant: ack implies req — proved per component, never building
//! // the product system.
//! let cert = engine
//!     .prove_invariant(
//!         &parse("ack -> req").unwrap(),
//!         &parse("!req & !ack").unwrap(),
//!         &[],
//!     )
//!     .unwrap();
//! assert!(cert.valid);
//! assert!(cert.fully_compositional());
//! ```

pub mod backend;
pub mod engine;
pub mod lemmas;
pub mod parallel;
pub mod property;
pub mod report;
pub mod rules;
/// Bounded work-claiming scheduler (re-exported from `cmc-sched`, which
/// also backs the explicit kernel's block-parallel frontier passes).
pub mod scheduler {
    pub use cmc_sched::*;
}

pub use backend::{
    check_refines, check_routed, check_routed_with_workers, estimate_reachable_states, Backend,
    BackendChoice, BackendError, BackendKind, CheckStats, ExplicitBackend, Obligation,
    ObligationOutcome, RouteDecision, SymbolicBackend, Target, Verdict, AUTO_BUDGET_SLACK,
    AUTO_CROSSOVER_STATES, AUTO_DENSE_BITS, MAX_WITNESSES,
};
pub use cmc_ctl::ExplicitLimits;
pub use cmc_symbolic::{
    ImageMode, MaintenanceConfig, MaintenanceMode, ScheduleConfig, ScheduleStats,
};
pub use engine::{Certificate, Component, Engine, EngineError, Step, Substitution};
pub use property::{classify, ClassRule, Classified, PropertyClass};
pub use report::VerificationReport;
pub use rules::{
    circular_refines, invariant_obligations, require_universal, rule4, rule5,
    substitution_side_conditions, CircularDischarge, Guarantee, RefinementError, RuleError,
};
