//! Pluggable checker backends.
//!
//! The paper keeps its deduction layer engine-agnostic — the case study
//! discharges obligations with SMV while the compositional rules never
//! care *how* a `⊨_r` query is answered. This module is that seam: a
//! [`Backend`] trait with one [`Verdict`] shape, implemented by the
//! explicit-state checker (`cmc_ctl::Checker`) and the symbolic BDD
//! checker (`cmc_symbolic`), plus a [`BackendChoice`] selector whose
//! `Auto` policy is a measured **cost model**: it estimates the reachable
//! state count from component sizes, alphabet overlap and the pinned
//! initial condition ([`estimate_reachable_states`]), routes
//! explicit-vs-symbolic on that estimate against the bench-calibrated
//! [`AUTO_CROSSOVER_STATES`], and records the decision (and any fallback)
//! in [`CheckStats::route`]. There is no width cliff any more — the
//! explicit engine runs reachable-only past
//! [`ExplicitLimits::dense_bits`], so a pinned 30-station ring stays
//! explicit while a trivially-restricted one routes symbolic.
//!
//! Checks are posed against a [`Target`] — a list of component systems
//! plus an expansion alphabet, composed *lazily*. This matters: neither
//! backend materialises the interleaving product. The explicit backend
//! frame-pads each component's transitions straight into its CSR index
//! ([`Checker::from_components`]); the symbolic backend builds one
//! disjunctive transition partition per component
//! ([`SymbolicModel::from_components`]). That is what removes the
//! `TooLarge` ceiling from compositional proofs and keeps the explicit
//! path linear in Σ|Rᵢ| rather than the product's `BTreeMap` explosion.

use cmc_bdd::BddStats;
use cmc_ctl::{
    simulates_explicit, CheckError, Checker, ExplicitLimits, Formula, Restriction, SimError,
    MAX_EXPLICIT_PROPS, MAX_SIM_PAIR_PROPS,
};
use cmc_kripke::{Alphabet, SimulationOutcome, State, System};
use cmc_symbolic::{
    simulates_symbolic, ImageMode, MaintenanceConfig, ScheduleConfig, ScheduleStats, SymbolicError,
    SymbolicModel,
};
use std::fmt;
use std::time::{Duration, Instant};

/// Maximum number of violating-state witnesses retained in a [`Verdict`]
/// (matches the explicit checker's cap).
pub const MAX_WITNESSES: usize = cmc_ctl::Verdict::MAX_WITNESSES;

/// A concrete checking engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Explicit-state enumeration over `2^Σ` ([`cmc_ctl::Checker`]).
    Explicit,
    /// BDD fixpoints over partitioned relations ([`cmc_symbolic`]).
    Symbolic,
}

impl BackendKind {
    /// Stable identity string — used in store keys and certificates, so
    /// it must never change for an existing kind.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Explicit => "explicit",
            BackendKind::Symbolic => "symbolic",
        }
    }

    /// Inverse of [`BackendKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "explicit" => Some(BackendKind::Explicit),
            "symbolic" => Some(BackendKind::Symbolic),
            _ => None,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The caller's backend policy for an engine or a driver run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// Always the explicit-state checker (errors past its budgets).
    Explicit,
    /// Always the symbolic checker.
    Symbolic,
    /// Route on the measured cost model: explicit when the estimated
    /// reachable state count is at most [`AUTO_CROSSOVER_STATES`],
    /// symbolic beyond — with a budgeted explicit attempt that falls back
    /// to symbolic if the estimate proves optimistic (see
    /// [`check_routed`]).
    #[default]
    Auto,
}

impl BackendChoice {
    /// Resolve the policy on *width alone* — the pre-cost-model fallback,
    /// kept for callers that have no [`Restriction`] in hand. The routed
    /// path ([`BackendChoice::route`] / [`check_routed`]) supersedes this
    /// wherever an initial condition is available.
    pub fn select(self, width: usize) -> BackendKind {
        match self {
            BackendChoice::Explicit => BackendKind::Explicit,
            BackendChoice::Symbolic => BackendKind::Symbolic,
            BackendChoice::Auto => {
                if width > MAX_EXPLICIT_PROPS {
                    BackendKind::Symbolic
                } else {
                    BackendKind::Explicit
                }
            }
        }
    }

    /// Plan a backend for `target ⊨_r …` using the measured cost model.
    /// Deterministic in its inputs (the planned kind is what store keys
    /// hash), and recorded verbatim in [`CheckStats::route`]; the actual
    /// engine may differ only when an `Auto` explicit attempt falls back
    /// (flagged by [`RouteDecision::fell_back`]).
    pub fn route(self, target: &Target, r: &Restriction) -> RouteDecision {
        let width = target.width();
        let estimated_states = estimate_reachable_states(target, r);
        let planned = match self {
            BackendChoice::Explicit => BackendKind::Explicit,
            BackendChoice::Symbolic => BackendKind::Symbolic,
            BackendChoice::Auto => {
                if estimated_states <= AUTO_CROSSOVER_STATES as u128 {
                    BackendKind::Explicit
                } else {
                    BackendKind::Symbolic
                }
            }
        };
        RouteDecision {
            width,
            estimated_states,
            crossover: AUTO_CROSSOVER_STATES,
            planned,
            fell_back: false,
        }
    }

    /// Stable identity string for deduction-level store keys (the
    /// *policy*, as opposed to the resolved [`BackendKind::name`] used for
    /// per-obligation keys).
    pub fn tag(self) -> &'static str {
        match self {
            BackendChoice::Explicit => "explicit",
            BackendChoice::Symbolic => "symbolic",
            BackendChoice::Auto => "auto",
        }
    }
}

/// `Auto`'s measured crossover, in estimated reachable states: at or
/// below this the explicit engine wins, above it the symbolic engine
/// does. Calibrated from the `backend_crossover` sweep (BENCH_backend.json,
/// token-ring family, 4..34 stations): the explicit engine wins every
/// measured row at ≤64 labelled states (17–31 µs vs the symbolic engine's
/// 22–103 µs BDD-construction floor), the engines tie near 256 states
/// (43 µs vs 38 µs), and symbolic wins decisively from 1024 states up
/// (46 µs vs 105 µs, widening to ~70× by 2^16 states). The crossover sits
/// in the 128–256 band; 128 takes the conservative edge so marginal rows
/// route to the engine whose cost grows sub-linearly past the boundary.
pub const AUTO_CROSSOVER_STATES: usize = 128;

/// Under `Auto`, dense-universe explicit checking is only used up to this
/// width. Calibrated alongside [`AUTO_CROSSOVER_STATES`]: dense labelling
/// costs `2^width` regardless of how small the reachable fragment is, and
/// the sweep's pinned rings show dense explicit beating symbolic at width
/// 8 (87 µs vs 141 µs) but losing from width 10 up (342 µs vs 167 µs) —
/// so past width 8 an explicit-routed target runs the hash-compacted
/// reachable kernel, whose cost tracks the *estimated* state count
/// instead of `2^width`.
pub const AUTO_DENSE_BITS: usize = 8;

/// How `Auto`'s explicit attempt bounds wasted work when the estimate is
/// optimistic: the reachable construction runs under a state budget of
/// this many × [`AUTO_CROSSOVER_STATES`], and blowing it triggers the
/// symbolic fallback. The attempt *is* the probe — nothing is built twice
/// on the success path.
pub const AUTO_BUDGET_SLACK: usize = 4;

/// One routing decision of the `Auto` cost model, recorded in
/// [`CheckStats::route`] so callers (and the crossover bench) can audit
/// what the policy predicted against what actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Union-alphabet width of the target.
    pub width: usize,
    /// Estimated reachable state count ([`estimate_reachable_states`]).
    pub estimated_states: u128,
    /// The crossover the estimate was compared against.
    pub crossover: usize,
    /// The engine the policy planned (deterministic; store keys use this).
    pub planned: BackendKind,
    /// Did an `Auto` explicit attempt exhaust its budget and fall back to
    /// the symbolic engine? (`stats.backend` then names the engine that
    /// actually produced the verdict.)
    pub fell_back: bool,
}

/// Estimate the reachable state count of `target` under `r`'s initial
/// condition — the `Auto` cost model's input, computed without building
/// anything.
///
/// In log2 terms:
///
/// ```text
/// est = Σ_i min(|Σᵢ|, log2(touchedᵢ + 1))   per-component state variety
///     − (Σ_i |Σᵢ| − |covered|)              shared propositions correlate
///     + (|Σ*| − |covered|)                  free expansion props double
///     − |atoms(I) ∩ Σ*|                     pinned initial propositions
/// ```
///
/// clamped to `[0, 127]`, where `touchedᵢ` is the number of distinct
/// states on component `i`'s proper transitions and `covered` the union
/// of component-owned positions. Components that wander their whole local
/// space contribute `2^|Σᵢ|`; a token-ring station that only ever touches
/// a handful of patterns contributes those. A conjunctive initial
/// condition pins each mentioned proposition, collapsing a factor of two
/// per atom — exactly why a one-hot-seeded 30-ring estimates ~1 state
/// while its trivially-restricted twin estimates ~2^30.
pub fn estimate_reachable_states(target: &Target, r: &Restriction) -> u128 {
    let union = target.union_alphabet();
    let mut covered: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut own_sum = 0usize;
    let mut log2 = 0.0f64;
    for sys in target.systems() {
        let a = sys.alphabet().len();
        own_sum += a;
        for name in sys.alphabet().names() {
            if let Some(p) = union.position(name) {
                covered.insert(p);
            }
        }
        let mut touched: std::collections::BTreeSet<u128> = std::collections::BTreeSet::new();
        for (s, t) in sys.proper_transitions() {
            touched.insert(s.0);
            touched.insert(t.0);
        }
        log2 += (a as f64).min(((touched.len() + 1) as f64).log2());
    }
    let dup = (own_sum - covered.len()) as f64;
    let free = (union.len() - covered.len()) as f64;
    let pinned = r
        .init
        .atomic_props()
        .iter()
        .filter(|p| union.contains(p))
        .count() as f64;
    let est = (log2 - dup + free - pinned).clamp(0.0, 127.0);
    est.exp2().ceil() as u128
}

/// Decide `target ⊨_r f` under `choice` through the cost-model router:
/// plan with [`BackendChoice::route`], run the planned engine, and — for
/// `Auto` only — fall back to the symbolic engine when a budgeted
/// explicit attempt refuses (state budget blown, or an initial condition
/// it cannot enumerate). The returned verdict's
/// [`CheckStats::route`] carries the decision, including the fallback
/// flag; [`CheckStats::backend`] names the engine that actually ran.
pub fn check_routed(
    choice: BackendChoice,
    target: &Target,
    r: &Restriction,
    f: &Formula,
) -> Result<Verdict, BackendError> {
    check_routed_with_workers(choice, target, r, f, 1)
}

/// [`check_routed`] with an explicit worker cap for the block-parallel
/// explicit kernels (the symbolic engine is single-threaded per check).
pub fn check_routed_with_workers(
    choice: BackendChoice,
    target: &Target,
    r: &Restriction,
    f: &Formula,
    workers: usize,
) -> Result<Verdict, BackendError> {
    let mut decision = choice.route(target, r);
    if decision.planned == BackendKind::Explicit {
        let limits = match choice {
            // The attempt is budgeted by the cost model: cheap to be wrong.
            BackendChoice::Auto => ExplicitLimits {
                dense_bits: AUTO_DENSE_BITS,
                max_states: Some(AUTO_CROSSOVER_STATES.saturating_mul(AUTO_BUDGET_SLACK)),
            },
            _ => ExplicitLimits::default(),
        };
        let eb = ExplicitBackend { limits, workers };
        match eb.check(target, r, f) {
            Ok(mut v) => {
                v.stats.route = Some(decision);
                return Ok(v);
            }
            Err(
                BackendError::StateBudget { .. }
                | BackendError::TooLarge { .. }
                | BackendError::Unsupported(_),
            ) if choice == BackendChoice::Auto => {
                decision.fell_back = true;
            }
            Err(e) => return Err(e),
        }
    }
    let mut v = SymbolicBackend::default().check(target, r, f)?;
    v.stats.route = Some(decision);
    Ok(v)
}

/// A checking target: the interleaving composition of `systems`, expanded
/// over the `extra` propositions (`M₁ ∘ … ∘ Mₙ ∘ (extra, I)`), represented
/// lazily so each backend can realise it in its own way.
#[derive(Debug, Clone)]
pub struct Target {
    systems: Vec<System>,
    extra: Alphabet,
}

impl Target {
    /// A single system, as-is.
    pub fn system(system: System) -> Self {
        Target {
            systems: vec![system],
            extra: Alphabet::empty(),
        }
    }

    /// A single system expanded over `extra` (the paper's `M ∘ (Σ', I)`).
    pub fn expansion(system: System, extra: Alphabet) -> Self {
        Target {
            systems: vec![system],
            extra,
        }
    }

    /// The composition of several systems. Panics on an empty list.
    pub fn composition(systems: Vec<System>) -> Self {
        assert!(!systems.is_empty(), "a Target needs at least one system");
        Target {
            systems,
            extra: Alphabet::empty(),
        }
    }

    /// The component systems.
    pub fn systems(&self) -> &[System] {
        &self.systems
    }

    /// The expansion alphabet (possibly empty).
    pub fn extra(&self) -> &Alphabet {
        &self.extra
    }

    /// The union alphabet `Σ*` of the composed-and-expanded target, in
    /// first-seen order (matching both `System::compose` and
    /// [`SymbolicModel::from_components`]).
    pub fn union_alphabet(&self) -> Alphabet {
        let base = self
            .systems
            .iter()
            .fold(Alphabet::empty(), |acc, s| acc.union(s.alphabet()));
        base.union(&self.extra)
    }

    /// Number of propositions in the union alphabet — the quantity the
    /// `Auto` policy selects on.
    pub fn width(&self) -> usize {
        self.union_alphabet().len()
    }

    /// Materialise the explicit product (exponential frame padding; the
    /// explicit backend checks the width *first* so this is only reached
    /// when it is affordable).
    pub fn materialize(&self) -> System {
        let mut it = self.systems.iter();
        let first = it.next().expect("a Target needs at least one system");
        let composed = it.fold(first.clone(), |acc, s| acc.compose(s));
        let missing: Vec<String> = self
            .extra
            .names()
            .iter()
            .filter(|n| !composed.alphabet().contains(n))
            .cloned()
            .collect();
        if missing.is_empty() {
            composed
        } else {
            composed.expand(&Alphabet::new(missing))
        }
    }
}

/// Per-check resource and timing statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckStats {
    /// The engine that ran the check.
    pub backend: BackendKind,
    /// Wall-clock time of the check (model construction included).
    pub duration: Duration,
    /// Full BDD-manager counters for the check — allocation, live/peak
    /// nodes, bytes, cache and GC activity (symbolic only).
    pub bdd: Option<BddStats>,
    /// How the transition structure was partitioned: conjunctive/disjunctive
    /// transition parts for the symbolic engine, CSR state blocks for the
    /// explicit engine (1 when it ran serially).
    pub partitions: usize,
    /// Worker threads the check was allowed to fan out over.
    pub threads: usize,
    /// States the reachable-only explicit kernel actually materialised
    /// (`None` for dense-universe and symbolic checks) — the cost model's
    /// "actual" against [`RouteDecision::estimated_states`].
    pub reachable_states: Option<u64>,
    /// The `Auto` cost-model decision that led here ([`None`] when the
    /// check was not routed, e.g. a backend invoked directly).
    pub route: Option<RouteDecision>,
    /// The quantification schedule an [`ImageMode::Scheduled`] symbolic
    /// check used — cluster counts before/after merging, the processing
    /// permutation, and re-plans triggered ([`None`] otherwise).
    pub schedule: Option<ScheduleStats>,
}

/// Unified result of a backend check — the shape shared by both engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Does `target ⊨_r f` hold?
    pub holds: bool,
    /// Violating states over the target's union alphabet, capped at
    /// [`MAX_WITNESSES`] (the symbolic backend lowers BDD witnesses to
    /// the same named [`State`] representation the explicit checker
    /// reports).
    pub violating: Vec<State>,
    /// Exact number of states satisfying `f` over the whole `2^Σ*`, where
    /// the backend can count them ([`None`] when the count would not be
    /// exact).
    pub sat_states: Option<u128>,
    /// Resource and timing statistics for this check.
    pub stats: CheckStats,
}

/// Errors from a backend check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The target exceeds the backend's state-space limit.
    TooLarge {
        /// Width of the target's union alphabet.
        props: usize,
        /// The backend's limit.
        limit: usize,
    },
    /// The formula (or restriction) mentions an unknown proposition.
    UnknownProposition(String),
    /// Reachable explicit construction blew its opt-in state budget
    /// ([`ExplicitLimits::max_states`]); under `Auto` this triggers the
    /// symbolic fallback.
    StateBudget {
        /// States materialised before refusing.
        explored: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The backend cannot pose this obligation (e.g. a temporal initial
    /// condition, which reachable explicit construction cannot enumerate
    /// but the symbolic engine handles).
    Unsupported(String),
    /// Any other checker failure.
    Other(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::TooLarge { props, limit } => write!(
                f,
                "target alphabet of {props} propositions exceeds the backend limit of {limit}"
            ),
            BackendError::UnknownProposition(p) => {
                write!(f, "formula mentions undefined proposition {p:?}")
            }
            BackendError::StateBudget { explored, budget } => write!(
                f,
                "reachable state space exceeds the explicit-engine budget of {budget} \
                 states ({explored} already materialised)"
            ),
            BackendError::Unsupported(m) => write!(f, "unsupported obligation: {m}"),
            BackendError::Other(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<CheckError> for BackendError {
    fn from(e: CheckError) -> Self {
        match e {
            CheckError::TooLarge { props, limit } => BackendError::TooLarge { props, limit },
            CheckError::UnknownProposition(p) => BackendError::UnknownProposition(p),
            CheckError::StateBudget { explored, budget } => {
                BackendError::StateBudget { explored, budget }
            }
            CheckError::InitNotEnumerable(m) => BackendError::Unsupported(m),
        }
    }
}

impl From<SymbolicError> for BackendError {
    fn from(e: SymbolicError) -> Self {
        match e {
            SymbolicError::UnknownProposition(p) => BackendError::UnknownProposition(p),
        }
    }
}

/// A checking engine behind a uniform interface.
pub trait Backend {
    /// Which engine this is.
    fn kind(&self) -> BackendKind;

    /// Decide `target ⊨_r f`.
    fn check(&self, target: &Target, r: &Restriction, f: &Formula)
        -> Result<Verdict, BackendError>;
}

/// The explicit-state backend. Up to [`ExplicitLimits::dense_bits`]
/// propositions it builds the dense frontier kernel over `2^Σ*` (exact
/// whole-universe sat counts); wider targets run the **reachable-only**
/// hash-compacted kernel — arbitrary-width state vectors interned to
/// dense ids, the CSR built on the fly from SAT(`I`) outward, bounded
/// only by the opt-in state budget.
#[derive(Debug, Clone, Copy)]
pub struct ExplicitBackend {
    /// Width/memory budgets (dense-universe cutover + reachable state
    /// budget).
    pub limits: ExplicitLimits,
    /// Worker threads for the block-parallel frontier passes (default 1,
    /// i.e. the serial worklist kernels).
    pub workers: usize,
}

impl Default for ExplicitBackend {
    fn default() -> Self {
        ExplicitBackend {
            limits: ExplicitLimits::default(),
            workers: 1,
        }
    }
}

impl ExplicitBackend {
    /// Backend with the given limits, serial.
    pub fn with_limits(limits: ExplicitLimits) -> Self {
        ExplicitBackend { limits, workers: 1 }
    }

    /// Fan the frontier passes out over up to `workers` threads (builder
    /// style). Any count computes identical verdicts — the block merge is
    /// a bitwise OR, pure set semantics.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

impl Backend for ExplicitBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Explicit
    }

    fn check(
        &self,
        target: &Target,
        r: &Restriction,
        f: &Formula,
    ) -> Result<Verdict, BackendError> {
        let props = target.width();
        let start = Instant::now();
        // Build the kernel straight from the components — neither mode
        // runs the exponential `materialize()` fold.
        let refs: Vec<&System> = target.systems().iter().collect();
        if props <= self.limits.dense_bits {
            // Dense universe: index i IS the state pattern; exact counts.
            let checker = Checker::from_components(&refs, target.extra(), self.limits.dense_bits)?
                .with_workers(self.workers);
            let v = checker.check(r, f)?;
            Ok(Verdict {
                holds: v.holds,
                violating: v.violating,
                sat_states: Some(v.sat_states as u128),
                stats: CheckStats {
                    backend: BackendKind::Explicit,
                    duration: start.elapsed(),
                    bdd: None,
                    partitions: checker.partition_blocks(),
                    threads: checker.workers(),
                    reachable_states: None,
                    route: None,
                    schedule: None,
                },
            })
        } else {
            // Reachable-only: hash-compacted on-the-fly construction from
            // SAT(I) outward. Verdicts agree with dense mode exactly;
            // whole-universe counts are not defined, so sat_states is None
            // and the materialised fragment size rides in the stats.
            let checker =
                Checker::reachable_from_components(&refs, target.extra(), &r.init, &self.limits)?
                    .with_workers(self.workers);
            let v = checker.check(r, f)?;
            Ok(Verdict {
                holds: v.holds,
                violating: v.violating,
                sat_states: None,
                stats: CheckStats {
                    backend: BackendKind::Explicit,
                    duration: start.elapsed(),
                    bdd: None,
                    partitions: checker.partition_blocks(),
                    threads: checker.workers(),
                    reachable_states: Some(checker.universe() as u64),
                    route: None,
                    schedule: None,
                },
            })
        }
    }
}

/// The symbolic backend: one disjunctive transition partition per
/// component, never materialising the product.
///
/// The memory kernel is configurable per backend instance: a maintenance
/// policy (GC/rehost triggers) and a computed-table bound. `None` leaves
/// the engine defaults in place.
#[derive(Debug, Clone, Copy, Default)]
pub struct SymbolicBackend {
    /// Maintenance policy installed on the model before checking.
    pub maintenance: Option<MaintenanceConfig>,
    /// Computed-table segment capacity, in entries.
    pub cache_capacity: Option<usize>,
    /// Image strategy: partitioned early quantification (the default),
    /// the memoised monolithic relation, or cost-driven scheduling.
    /// `None` keeps the model default.
    pub image_mode: Option<ImageMode>,
    /// Merge/cost-model knobs for [`ImageMode::Scheduled`]. `None` keeps
    /// the model defaults.
    pub schedule: Option<ScheduleConfig>,
}

impl SymbolicBackend {
    /// Backend with a maintenance policy.
    pub fn with_maintenance(cfg: MaintenanceConfig) -> Self {
        SymbolicBackend {
            maintenance: Some(cfg),
            ..Self::default()
        }
    }

    /// Override the computed-table bound (builder style).
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = Some(entries);
        self
    }

    /// Pick the image strategy (builder style). Both modes compute the
    /// same sets; `Monolithic` exists as the measurable baseline the
    /// partitioned product is benchmarked against.
    pub fn with_image_mode(mut self, mode: ImageMode) -> Self {
        self.image_mode = Some(mode);
        self
    }

    /// Override the scheduler's merge/cost-model knobs (builder style).
    /// Only [`ImageMode::Scheduled`] reads them.
    pub fn with_schedule(mut self, cfg: ScheduleConfig) -> Self {
        self.schedule = Some(cfg);
        self
    }
}

/// Widths up to this many propositions admit an exact `f64` satisfying
/// count (integers are exact below `2^53`).
const EXACT_COUNT_PROPS: usize = 52;

impl Backend for SymbolicBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Symbolic
    }

    fn check(
        &self,
        target: &Target,
        r: &Restriction,
        f: &Formula,
    ) -> Result<Verdict, BackendError> {
        let start = Instant::now();
        let refs: Vec<&System> = target.systems().iter().collect();
        let mut model = SymbolicModel::from_components(&refs, target.extra());
        if let Some(entries) = self.cache_capacity {
            model.mgr().set_cache_capacity(entries);
        }
        if let Some(cfg) = self.maintenance {
            model.set_maintenance(cfg);
        }
        if let Some(mode) = self.image_mode {
            model.set_image_mode(mode);
        }
        if let Some(cfg) = self.schedule {
            model.set_schedule_config(cfg);
        }
        let v = model.check(r, f)?;
        let n = model.num_state_vars();
        // Count the satisfying states while the sat-set BDD is still cheap
        // to rebuild (the fixpoints are cached in the manager). Components
        // built by `from_components` carry no model-level fairness, so
        // `sat_under(f, r.fairness)` is exactly the set `check` used.
        // `sat_under` runs fixpoints and therefore maintenance, so the
        // violating set rides in the root registry across it.
        let rviol = model.mgr().protect(v.violating);
        let sat_states = if n <= EXACT_COUNT_PROPS {
            match model.sat_under(f, &r.fairness) {
                Ok(sat) => {
                    let count = model.mgr_ref().sat_count(sat, 2 * n) / (1u64 << n) as f64;
                    Some(count as u128)
                }
                Err(e) => {
                    model.mgr().unprotect(rviol);
                    return Err(e.into());
                }
            }
        } else {
            None
        };
        let violating_bdd = model.mgr_ref().root(rviol);
        model.mgr().unprotect(rviol);
        let alphabet = target.union_alphabet();
        let violating = model
            .enumerate_states(violating_bdd, MAX_WITNESSES)
            .iter()
            .filter_map(|ns| ns.to_state(&alphabet))
            .collect();
        Ok(Verdict {
            holds: v.holds,
            violating,
            sat_states,
            stats: CheckStats {
                backend: BackendKind::Symbolic,
                duration: start.elapsed(),
                bdd: Some(model.mgr_ref().stats()),
                partitions: model.num_trans_parts(),
                threads: 1,
                reachable_states: None,
                route: None,
                schedule: model.schedule_stats(),
            },
        })
    }
}

/// The backend implementing `kind`, with default configuration.
pub fn backend_for(kind: BackendKind) -> Box<dyn Backend + Send + Sync> {
    match kind {
        BackendKind::Explicit => Box::new(ExplicitBackend::default()),
        BackendKind::Symbolic => Box::new(SymbolicBackend::default()),
    }
}

/// Decide `concrete ⊑ abstraction` under the backend policy.
///
/// The simulation fixpoint has its own routing width — the *pair*
/// universe is `2^(|Σ_C|+|Σ_A|)`, so `Auto` crosses to the BDD checker at
/// [`MAX_SIM_PAIR_PROPS`] combined propositions rather than at the
/// property-checking limit. A forced `Explicit` policy past the limit
/// fails fast with [`BackendError::TooLarge`] before any per-pair work.
/// Returns the outcome together with the engine that produced it (the
/// resolved kind goes into store keys, so equal obligations routed the
/// same way collide).
pub fn check_refines(
    choice: BackendChoice,
    concrete: &System,
    abstraction: &System,
) -> Result<(SimulationOutcome, BackendKind), BackendError> {
    let props = concrete.alphabet().len() + abstraction.alphabet().len();
    let kind = match choice {
        BackendChoice::Explicit => BackendKind::Explicit,
        BackendChoice::Symbolic => BackendKind::Symbolic,
        BackendChoice::Auto => {
            if props > MAX_SIM_PAIR_PROPS {
                BackendKind::Symbolic
            } else {
                BackendKind::Explicit
            }
        }
    };
    match kind {
        BackendKind::Explicit => match simulates_explicit(concrete, abstraction) {
            Ok(out) => Ok((out, kind)),
            Err(SimError::TooLarge { props, limit }) => {
                Err(BackendError::TooLarge { props, limit })
            }
        },
        BackendKind::Symbolic => Ok((simulates_symbolic(concrete, abstraction), kind)),
    }
}

/// One dischargeable proof obligation — the vocabulary the engine's
/// refinement layer deals in. `Check` is the classic `⊨_r` query both
/// [`Backend`]s answer; `Refines` and `Substituted` are the two new kinds
/// introduced by the abstraction-substitution rule.
#[derive(Debug, Clone)]
pub enum Obligation {
    /// `target ⊨_r f`.
    Check {
        /// The (lazily composed) system under check.
        target: Target,
        /// The restriction `r = (I, F)`.
        r: Restriction,
        /// The property.
        f: Formula,
    },
    /// `concrete ⊑ abstraction` — a simulation premise.
    Refines {
        /// The concrete component.
        concrete: System,
        /// Its candidate abstraction.
        abstraction: System,
    },
    /// Prove `concrete ∘ rest ⊨_r f` by `concrete ⊑ abstraction` plus
    /// `abstraction ∘ rest ⊨_r f` (side conditions are the *caller's*
    /// duty — `cmc_core::rules::substitution_side_conditions` — this is
    /// the mechanical discharge only).
    Substituted {
        /// The component being abstracted.
        concrete: System,
        /// The abstraction substituted for it.
        abstraction: System,
        /// The unchanged context components.
        rest: Vec<System>,
        /// The restriction.
        r: Restriction,
        /// The property.
        f: Formula,
    },
}

/// The outcome of discharging an [`Obligation`].
#[derive(Debug, Clone)]
pub enum ObligationOutcome {
    /// Outcome of a `Check` obligation.
    Verdict(Verdict),
    /// Outcome of a `Refines` obligation, with the engine that ran it.
    Simulation(SimulationOutcome, BackendKind),
    /// Outcome of a `Substituted` obligation: the simulation premise, and
    /// the abstract-side property verdict — [`None`] when the simulation
    /// already failed (the property is then never posed).
    Substitution {
        /// `concrete ⊑ abstraction`, with the engine that decided it.
        simulation: (SimulationOutcome, BackendKind),
        /// `abstraction ∘ rest ⊨_r f`, if the simulation held.
        verdict: Option<Verdict>,
    },
}

impl ObligationOutcome {
    /// Did the obligation discharge positively?
    pub fn holds(&self) -> bool {
        match self {
            ObligationOutcome::Verdict(v) => v.holds,
            ObligationOutcome::Simulation(out, _) => out.holds(),
            ObligationOutcome::Substitution {
                simulation,
                verdict,
            } => simulation.0.holds() && verdict.as_ref().is_some_and(|v| v.holds),
        }
    }
}

impl Obligation {
    /// Discharge this obligation under `choice`. Purely mechanical: no
    /// soundness side conditions are enforced here.
    pub fn discharge(&self, choice: BackendChoice) -> Result<ObligationOutcome, BackendError> {
        match self {
            Obligation::Check { target, r, f } => {
                let verdict = check_routed(choice, target, r, f)?;
                Ok(ObligationOutcome::Verdict(verdict))
            }
            Obligation::Refines {
                concrete,
                abstraction,
            } => {
                let (out, kind) = check_refines(choice, concrete, abstraction)?;
                Ok(ObligationOutcome::Simulation(out, kind))
            }
            Obligation::Substituted {
                concrete,
                abstraction,
                rest,
                r,
                f,
            } => {
                let simulation = check_refines(choice, concrete, abstraction)?;
                let verdict = if simulation.0.holds() {
                    let mut systems = vec![abstraction.clone()];
                    systems.extend(rest.iter().cloned());
                    let target = Target::composition(systems);
                    Some(check_routed(choice, &target, r, f)?)
                } else {
                    None
                };
                Ok(ObligationOutcome::Substitution {
                    simulation,
                    verdict,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmc_ctl::parse;

    fn riser(name: &str) -> System {
        let mut m = System::new(Alphabet::new([name]));
        m.add_transition_named(&[], &[name]);
        m
    }

    #[test]
    fn auto_policy_crosses_at_the_explicit_limit() {
        assert_eq!(BackendChoice::Auto.select(1), BackendKind::Explicit);
        assert_eq!(
            BackendChoice::Auto.select(MAX_EXPLICIT_PROPS),
            BackendKind::Explicit
        );
        assert_eq!(
            BackendChoice::Auto.select(MAX_EXPLICIT_PROPS + 1),
            BackendKind::Symbolic
        );
        assert_eq!(BackendChoice::Explicit.select(1000), BackendKind::Explicit);
        assert_eq!(BackendChoice::Symbolic.select(1), BackendKind::Symbolic);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [BackendKind::Explicit, BackendKind::Symbolic] {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::from_name("bogus"), None);
    }

    #[test]
    fn backends_agree_on_a_small_composition() {
        let target = Target::composition(vec![riser("a"), riser("b")]);
        let r = Restriction::trivial();
        for text in ["a -> AX a", "EF (a & b)", "AF a", "AG (a -> EX a)"] {
            let f = parse(text).unwrap();
            let e = ExplicitBackend::default().check(&target, &r, &f).unwrap();
            let s = SymbolicBackend::default().check(&target, &r, &f).unwrap();
            assert_eq!(e.holds, s.holds, "backends disagree on {text}");
            assert_eq!(e.sat_states, s.sat_states, "sat counts disagree on {text}");
        }
    }

    #[test]
    fn witnesses_agree_as_states() {
        // AG !b fails exactly in the b-states; both backends must name the
        // same violating set over the same alphabet.
        let target = Target::composition(vec![riser("a"), riser("b")]);
        let f = parse("AG !b").unwrap();
        let r = Restriction::trivial();
        let mut e = ExplicitBackend::default().check(&target, &r, &f).unwrap();
        let mut s = SymbolicBackend::default().check(&target, &r, &f).unwrap();
        assert!(!e.holds && !s.holds);
        e.violating.sort();
        s.violating.sort();
        assert_eq!(e.violating, s.violating);
    }

    #[test]
    fn explicit_refuses_wide_unpinned_targets_on_the_state_budget() {
        // 30 unpinned risers reach all 2^30 valuations; the reachable
        // kernel must refuse on the opt-in state budget *before*
        // materialising anything (the trivial init alone proves the
        // budget is blown), not hang enumerating.
        let systems: Vec<System> = (0..30).map(|i| riser(&format!("p{i}"))).collect();
        let target = Target::composition(systems);
        let f = parse("p0 -> AX p0").unwrap();
        let err = ExplicitBackend::default()
            .check(&target, &Restriction::trivial(), &f)
            .unwrap_err();
        assert_eq!(
            err,
            BackendError::StateBudget {
                explored: 0,
                budget: ExplicitLimits::DEFAULT_MAX_STATES
            }
        );
    }

    #[test]
    fn explicit_checks_wide_pinned_targets_reachable_only() {
        // The same 30 propositions, but pinned: a 30-station token ring
        // with a one-hot initial state has exactly 30 reachable states.
        // Pre-PR-9 this was a hard TooLarge; now the reachable kernel
        // answers it and agrees with the symbolic engine.
        let stations: Vec<System> = (0..30)
            .map(|i| {
                let j = (i + 1) % 30;
                let here = format!("t{i}");
                let next = format!("t{j}");
                let mut m = System::new(Alphabet::new([here.clone(), next.clone()]));
                m.add_transition_named(&[&here], &[&next]);
                m
            })
            .collect();
        let target = Target::composition(stations);
        assert_eq!(target.width(), 30);
        let init = Formula::and_many((0..30).map(|i| {
            let p = Formula::ap(format!("t{i}"));
            if i == 0 {
                p
            } else {
                p.not()
            }
        }));
        let r = Restriction::with_init(init);
        let f = parse("AG EF t0").unwrap();
        let e = ExplicitBackend::default().check(&target, &r, &f).unwrap();
        let s = SymbolicBackend::default().check(&target, &r, &f).unwrap();
        assert_eq!(e.holds, s.holds);
        assert!(e.holds);
        assert_eq!(e.stats.backend, BackendKind::Explicit);
        assert_eq!(e.stats.reachable_states, Some(30));
        assert_eq!(e.sat_states, None, "no whole-universe count past dense");
    }

    #[test]
    fn route_is_a_cost_model_not_a_width_cliff() {
        // Same 30-prop ring, two restrictions: pinned routes explicit
        // (est ≈ 1 state), trivial routes symbolic (est ≈ 2^30).
        let stations: Vec<System> = (0..30)
            .map(|i| {
                let j = (i + 1) % 30;
                let here = format!("t{i}");
                let next = format!("t{j}");
                let mut m = System::new(Alphabet::new([here.clone(), next.clone()]));
                m.add_transition_named(&[&here], &[&next]);
                m
            })
            .collect();
        let target = Target::composition(stations);
        let pinned = Restriction::with_init(Formula::and_many((0..30).map(|i| {
            let p = Formula::ap(format!("t{i}"));
            if i == 0 {
                p
            } else {
                p.not()
            }
        })));
        let trivial = Restriction::trivial();
        let d_pinned = BackendChoice::Auto.route(&target, &pinned);
        let d_trivial = BackendChoice::Auto.route(&target, &trivial);
        assert_eq!(d_pinned.planned, BackendKind::Explicit);
        assert_eq!(d_trivial.planned, BackendKind::Symbolic);
        assert!(d_pinned.estimated_states <= AUTO_CROSSOVER_STATES as u128);
        assert!(d_trivial.estimated_states > AUTO_CROSSOVER_STATES as u128);
        // And the routed check actually runs the planned engines.
        let f = parse("AG EF t0").unwrap();
        let ve = check_routed(BackendChoice::Auto, &target, &pinned, &f).unwrap();
        assert_eq!(ve.stats.backend, BackendKind::Explicit);
        assert_eq!(ve.stats.route, Some(d_pinned));
        let vs = check_routed(BackendChoice::Auto, &target, &trivial, &f).unwrap();
        assert_eq!(vs.stats.backend, BackendKind::Symbolic);
        assert_eq!(vs.stats.route, Some(d_trivial));
    }

    #[test]
    fn optimistic_estimates_fall_back_to_symbolic() {
        // Toggle components fool the estimate: the init pins every
        // proposition, so the cost model predicts ~1 reachable state and
        // plans explicit — but toggles fan back out to the full 2^26
        // product. The explicit attempt burns through its state budget,
        // refuses, and Auto recovers symbolically, recording the fallback.
        let systems: Vec<System> = (0..26)
            .map(|i| {
                let name = format!("p{i}");
                let mut m = System::new(Alphabet::new([name.clone()]));
                m.add_transition_named(&[], &[name.as_str()]);
                m.add_transition_named(&[name.as_str()], &[]);
                m
            })
            .collect();
        let target = Target::composition(systems);
        let init = Formula::and_many((0..26).map(|i| Formula::ap(format!("p{i}"))));
        let r = Restriction::with_init(init);
        let d = BackendChoice::Auto.route(&target, &r);
        assert_eq!(d.planned, BackendKind::Explicit, "estimate fooled low");
        assert!(d.estimated_states <= AUTO_CROSSOVER_STATES as u128);
        let f = parse("EF !p0").unwrap();
        let v = check_routed(BackendChoice::Auto, &target, &r, &f).unwrap();
        assert!(v.holds, "a toggle can always clear p0");
        assert_eq!(v.stats.backend, BackendKind::Symbolic);
        let route = v.stats.route.unwrap();
        assert!(route.fell_back, "fallback must be recorded");
        assert_eq!(route.planned, BackendKind::Explicit);
        // Forced explicit backends get no safety net: a tight budget is an
        // honest refusal, with the exploration cost it sank reported back.
        let tight = ExplicitBackend::with_limits(ExplicitLimits {
            dense_bits: 16,
            max_states: Some(500),
        });
        let err = tight.check(&target, &r, &f).unwrap_err();
        assert!(
            matches!(
                err,
                BackendError::StateBudget {
                    explored: 500,
                    budget: 500
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn symbolic_handles_wide_targets() {
        let systems: Vec<System> = (0..30).map(|i| riser(&format!("p{i}"))).collect();
        let target = Target::composition(systems);
        let f = parse("p7 -> AX p7").unwrap();
        let v = SymbolicBackend::default()
            .check(&target, &Restriction::trivial(), &f)
            .unwrap();
        assert!(v.holds);
        assert_eq!(v.stats.backend, BackendKind::Symbolic);
        let bdd = v.stats.bdd.unwrap();
        assert!(bdd.nodes_allocated > 0);
        assert!(bdd.live_nodes > 0 && bdd.peak_live_nodes >= bdd.live_nodes);
    }

    /// A GC-bounded backend (tight cache, low collection threshold, no
    /// reordering) reaches the same verdicts as the unbounded default,
    /// actually collects, and never holds more live nodes than the
    /// unbounded run's peak.
    #[test]
    fn bounded_backend_agrees_and_collects() {
        use cmc_symbolic::MaintenanceConfig;
        let systems: Vec<System> = (0..12).map(|i| riser(&format!("p{i}"))).collect();
        let target = Target::composition(systems);
        let r = Restriction::trivial();
        // GC-only policy: the rehost threshold is unreachable, so the
        // variable order (and therefore every node count) is directly
        // comparable against the unbounded baseline. (The threshold sits
        // this low because implicit-frame partitions keep a 12-riser
        // model to a few hundred nodes total.)
        let bounded = SymbolicBackend::with_maintenance(MaintenanceConfig {
            gc_threshold: 64,
            ..MaintenanceConfig::default()
        })
        .cache_capacity(256);
        for text in ["EF (p0 & p11)", "AG (p3 -> EX p3)", "AF p5"] {
            let f = parse(text).unwrap();
            let d = SymbolicBackend::default().check(&target, &r, &f).unwrap();
            let b = bounded.check(&target, &r, &f).unwrap();
            assert_eq!(d.holds, b.holds, "bounding changed the verdict on {text}");
            assert_eq!(d.sat_states, b.sat_states, "sat counts differ on {text}");
            let db = d.stats.bdd.unwrap();
            let bb = b.stats.bdd.unwrap();
            assert!(bb.gc_runs > 0, "low-threshold policy never collected");
            assert!(
                bb.peak_live_nodes <= db.peak_live_nodes,
                "bounded run peaked above the unbounded baseline on {text}"
            );
        }
    }

    /// The adversarial forced schedule (collect at every safe point,
    /// rehost every third collection) must keep every verdict and sat
    /// count identical to the default engine.
    #[test]
    fn forced_maintenance_backend_agrees() {
        use cmc_symbolic::MaintenanceConfig;
        let systems: Vec<System> = (0..10).map(|i| riser(&format!("p{i}"))).collect();
        let target = Target::composition(systems);
        let r = Restriction::trivial();
        let forced = SymbolicBackend::with_maintenance(MaintenanceConfig::forced_every(1))
            .cache_capacity(128);
        for text in ["EF (p0 & p9)", "AG (p3 -> EX p3)", "AF p5", "E [p0 U p9]"] {
            let f = parse(text).unwrap();
            let d = SymbolicBackend::default().check(&target, &r, &f).unwrap();
            let b = forced.check(&target, &r, &f).unwrap();
            assert_eq!(d.holds, b.holds, "forced maintenance changed {text}");
            assert_eq!(d.sat_states, b.sat_states, "sat counts differ on {text}");
            assert!(b.stats.bdd.unwrap().gc_runs > 0);
        }
    }

    #[test]
    fn expansion_target_matches_materialised_expansion() {
        let base = riser("x");
        let extra = Alphabet::new(["y"]);
        let target = Target::expansion(base.clone(), extra.clone());
        assert_eq!(target.width(), 2);
        let direct = base.expand(&extra);
        assert!(target.materialize().equivalent(&direct));
        // And both backends see the frozen `y` the same way.
        let f = parse("y -> AX y").unwrap();
        let r = Restriction::trivial();
        let e = ExplicitBackend::default().check(&target, &r, &f).unwrap();
        let s = SymbolicBackend::default().check(&target, &r, &f).unwrap();
        assert!(e.holds && s.holds);
    }

    #[test]
    fn refines_routes_by_pair_width_and_agrees_across_engines() {
        // Narrow pair: Auto stays explicit.
        let c = riser("x");
        let mut a = System::new(Alphabet::new(["x"]));
        a.add_transition_named(&[], &["x"]);
        a.add_transition_named(&["x"], &[]);
        let (out, kind) = check_refines(BackendChoice::Auto, &c, &a).unwrap();
        assert!(out.holds());
        assert_eq!(kind, BackendKind::Explicit);
        let (sym, kind) = check_refines(BackendChoice::Symbolic, &c, &a).unwrap();
        assert_eq!(sym, out);
        assert_eq!(kind, BackendKind::Symbolic);
        // Wide pair: Auto crosses to symbolic; forced explicit fails fast.
        let names: Vec<String> = (0..MAX_SIM_PAIR_PROPS).map(|i| format!("p{i}")).collect();
        let wide = System::new(Alphabet::new(names));
        let (_, kind) = check_refines(BackendChoice::Auto, &wide, &wide).unwrap();
        assert_eq!(kind, BackendKind::Symbolic);
        let err = check_refines(BackendChoice::Explicit, &wide, &wide).unwrap_err();
        assert!(matches!(err, BackendError::TooLarge { .. }));
    }

    #[test]
    fn substituted_obligation_discharges_both_halves() {
        // Concrete toggler over {x, scratch}; abstraction = its projection
        // onto {x}; context riser over {y}. The substituted check must
        // verify the simulation and then pose the property on A ∘ rest.
        let mut c = System::new(Alphabet::new(["x", "scratch"]));
        c.add_transition_named(&[], &["scratch"]);
        c.add_transition_named(&["scratch"], &["scratch", "x"]);
        c.add_transition_named(&["scratch", "x"], &["x"]);
        c.add_transition_named(&["x"], &[]);
        let a = c.project(&Alphabet::new(["x"]));
        let ob = Obligation::Substituted {
            concrete: c,
            abstraction: a,
            rest: vec![riser("y")],
            r: Restriction::trivial(),
            f: parse("AG (y -> AX y)").unwrap(),
        };
        let out = ob.discharge(BackendChoice::Auto).unwrap();
        assert!(out.holds());
        match out {
            ObligationOutcome::Substitution {
                simulation,
                verdict,
            } => {
                assert!(simulation.0.holds());
                assert!(verdict.unwrap().holds);
            }
            other => panic!("expected a substitution outcome, got {other:?}"),
        }
    }

    #[test]
    fn failed_simulation_short_circuits_the_property() {
        // A riser does not simulate back down, so the abstract property is
        // never posed.
        let mut c = System::new(Alphabet::new(["x"]));
        c.add_transition_named(&[], &["x"]);
        c.add_transition_named(&["x"], &[]);
        let mut a = System::new(Alphabet::new(["x"]));
        a.add_transition_named(&[], &["x"]);
        let ob = Obligation::Substituted {
            concrete: c,
            abstraction: a,
            rest: vec![],
            r: Restriction::trivial(),
            f: parse("AG x").unwrap(),
        };
        match ob.discharge(BackendChoice::Auto).unwrap() {
            ObligationOutcome::Substitution {
                simulation,
                verdict,
            } => {
                assert!(!simulation.0.holds());
                assert!(
                    verdict.is_none(),
                    "property must not run after a failed premise"
                );
            }
            other => panic!("expected a substitution outcome, got {other:?}"),
        }
    }

    #[test]
    fn unknown_proposition_is_uniform() {
        let target = Target::system(riser("x"));
        let f = parse("zz").unwrap();
        let r = Restriction::trivial();
        let e = ExplicitBackend::default()
            .check(&target, &r, &f)
            .unwrap_err();
        let s = SymbolicBackend::default()
            .check(&target, &r, &f)
            .unwrap_err();
        assert_eq!(e, BackendError::UnknownProposition("zz".into()));
        assert_eq!(e, s);
    }
}
