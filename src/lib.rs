#![warn(missing_docs)]

//! # compositional-mc — compositional CTL model checking
//!
//! A full Rust implementation of *An Approach to Compositional Model
//! Checking* (Andrade & Sanders, 2002), including every substrate the
//! paper builds on: an ROBDD package, explicit-state and symbolic fair-CTL
//! model checkers, a mini-SMV modelling language, the compositional theory
//! (universal / existential / guarantees properties, Rules 1–5, the
//! assume-guarantee proof engine), and the AFS-1 / AFS-2 case study.
//!
//! This facade crate re-exports the workspace members under one roof; the
//! runnable binaries in `examples/` and the cross-crate suites in `tests/`
//! are built against it.
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`bdd`] | ROBDD manager, quantification, model counting, stats |
//! | [`kripke`] | systems `M = (Σ, R)`, the composition operator `∘` |
//! | [`ctl`] | CTL syntax/parser, restrictions `(I, F)`, explicit checker |
//! | [`symbolic`] | BDD-based fair-CTL checker (the "SMV" engine) |
//! | [`smv`] | mini-SMV language, Figure-3 boolean encoding, drivers |
//! | [`core`] | property classes, Rules 1–5, proof engine, lemmas |
//! | [`store`] | content-addressed certificate store, memoized sessions |
//! | [`afs`] | the AFS-1 / AFS-2 case study and scaling experiments |

pub use cmc_afs as afs;
pub use cmc_bdd as bdd;
pub use cmc_core as core;
pub use cmc_ctl as ctl;
pub use cmc_kripke as kripke;
pub use cmc_smv as smv;
pub use cmc_store as store;
pub use cmc_symbolic as symbolic;
