//! Partition-conformance suite — the test layer locking in the
//! partitioned transition representation and the block-parallel explicit
//! kernels.
//!
//! Three pillars:
//!
//! 1. a 250-seed sweep of multi-component obligations through the
//!    **five-way** oracle (partitioned symbolic / scheduled symbolic /
//!    monolithic symbolic / blocked explicit / naïve reference), with sat
//!    counts and witnesses cross-validated and partition-coarsening
//!    shrinking on failure;
//! 2. property tests that **any** early-quantification schedule over a
//!    conjunctive partition computes the same pre-image as the monolithic
//!    relation, and that block-parallel frontiers agree with the serial
//!    worklist on transitions engineered to straddle CSR block edges;
//! 3. scheduler determinism: verdicts, sat-state counts and certificate
//!    steps are identical for 1/2/4/8 workers, including runs where every
//!    worker drives its own BDD manager under `ForcedEvery(1)`
//!    maintenance.

use cmc_testkit::{
    gen_partitioned_obligation, partition_corpus_seeds, run_obligation_with, run_quad_obligation,
    GenConfig, OracleOutcome, QuadOutcome,
};
use compositional_mc::core::parallel::check_targets_with_workers;
use compositional_mc::core::{
    Backend, BackendChoice, Component, Engine, ExplicitBackend, SymbolicBackend, Target,
};
use compositional_mc::ctl::{Checker, Formula, Restriction};
use compositional_mc::kripke::{Alphabet, State, System};
use compositional_mc::symbolic::{ImageMode, MaintenanceConfig, ScheduleConfig, SymbolicModel};
use proptest::prelude::*;

/// The tentpole acceptance gate: ≥ 250 deterministic multi-component
/// obligations through the five-way oracle, in full agreement, every
/// backend witness replayed and every exact sat count checked against
/// the reference (both happen inside the oracle — a bogus witness or
/// count is reported as a disagreement note).
#[test]
fn two_hundred_fifty_partitioned_obligations_agree_four_ways() {
    let cfg = GenConfig::default();
    let mut seeds: Vec<u64> = partition_corpus_seeds();
    let fresh = 250usize.saturating_sub(seeds.len());
    seeds.extend(2_000..2_000 + fresh as u64);
    assert!(seeds.len() >= 250, "corpus too small: {}", seeds.len());

    let mut agreed = 0usize;
    let mut skipped = 0usize;
    for &seed in &seeds {
        let o = gen_partitioned_obligation(seed, &cfg);
        match run_quad_obligation(&o) {
            QuadOutcome::Agree(_) => agreed += 1,
            QuadOutcome::Skipped(why) => {
                skipped += 1;
                assert!(
                    skipped <= seeds.len() / 50,
                    "too many skipped obligations (last: seed {seed}: {why})"
                );
            }
            QuadOutcome::Disagree(d) => panic!("{d}"),
        }
    }
    assert!(
        agreed >= 245,
        "only {agreed} obligations ran to agreement ({skipped} skipped)"
    );
}

/// A random reflexive system over `names` from a list of transition
/// pairs.
fn system_from_pairs(names: &[&str], pairs: &[(u32, u32)]) -> System {
    let mut m = System::new(Alphabet::new(names.iter().copied()));
    let mask = (1u128 << names.len()) - 1;
    for &(s, t) in pairs {
        m.add_transition(State(s as u128 & mask), State(t as u128 & mask));
    }
    m
}

fn arb_pairs(max: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..max, 0..max), 0..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any early-quantification schedule over the conjunctive clusters of
    /// any partition agrees with the closed-form partition pre-image, and
    /// the partitioned `pre_exists` agrees with the monolithic one — on
    /// random three-component chains and random state sets.
    #[test]
    fn quantification_schedules_match_monolithic_pre_image(
        pa in arb_pairs(8),
        pb in arb_pairs(8),
        pc in arb_pairs(8),
        set_bits in 0u32..256,
        rot in 0usize..6,
    ) {
        let a = system_from_pairs(&["p", "q", "r"], &pa);
        let b = system_from_pairs(&["q", "r", "s"], &pb);
        let c = system_from_pairs(&["r", "s", "t"], &pc);
        let refs = [&a, &b, &c];
        let mut m = SymbolicModel::from_components(&refs, &Alphabet::empty());
        // One partition per component with at least one proper move
        // (transition-free components contribute only the implicit
        // stutter and get no partition).
        prop_assert!(m.num_trans_parts() <= 3);

        // A pseudo-random state set: the union of minterms selected by
        // `set_bits` over the low three variables.
        let props: Vec<_> = ["p", "q", "r", "s", "t"]
            .iter()
            .map(|n| m.prop(n).unwrap())
            .collect();
        let mut s = {
            let mgr = m.mgr();
            let mut acc = compositional_mc::bdd::Bdd::FALSE;
            for k in 0..8 {
                if set_bits & (1 << k) != 0 {
                    let mut term = compositional_mc::bdd::Bdd::TRUE;
                    for (j, &p) in props.iter().take(3).enumerate() {
                        let lit = if k & (1 << j) != 0 { p } else { mgr.not(p) };
                        term = mgr.and(term, lit);
                    }
                    acc = mgr.or(acc, term);
                }
            }
            acc
        };
        if set_bits % 3 == 0 {
            let extra = m.mgr().and(props[3], props[4]);
            s = m.mgr().or(s, extra);
        }

        // Partitioned vs monolithic vs scheduled (merged-cluster)
        // pre-image of the same set.
        m.set_image_mode(ImageMode::Partitioned);
        let part = m.pre_exists(s);
        m.set_image_mode(ImageMode::Monolithic);
        let mono = m.pre_exists(s);
        prop_assert_eq!(part, mono, "image modes disagree on pre_exists");
        m.set_image_mode(ImageMode::Scheduled);
        let sched = m.pre_exists(s);
        prop_assert_eq!(sched, mono, "scheduled pre_exists diverged");
        if let Some(st) = m.schedule_stats() {
            let mut order = st.order.clone();
            order.sort_unstable();
            prop_assert_eq!(
                order,
                (0..st.clusters_after).collect::<Vec<_>>(),
                "schedule order is not a permutation"
            );
        }

        // Every rotation of every partition's conjunctive clusters
        // computes the closed-form per-partition pre-image — and so does
        // the cost-model-chosen permutation.
        m.set_image_mode(ImageMode::Partitioned);
        let s_next = m.to_next_frame(s);
        let next_cube = m.next_cube();
        for i in 0..m.num_trans_parts() {
            let closed = m.pre_image_part(i, s);
            let mut clusters = m.conjunctive_clusters(i);
            let turn = rot % clusters.len().max(1);
            clusters.rotate_left(turn);
            clusters.push(s_next);
            let scheduled = m.mgr().and_exists_multi(&clusters, next_cube);
            prop_assert_eq!(
                scheduled, closed,
                "cluster schedule (rotation {rot}) disagrees on partition {i}"
            );
            let greedy = m.mgr().and_exists_multi_scheduled(&clusters, next_cube);
            prop_assert_eq!(
                greedy, closed,
                "greedy conjunct schedule disagrees on partition {i}"
            );
        }
    }

    /// Block-parallel frontier passes agree with the serial worklist on a
    /// 12-proposition universe whose transitions are engineered to cross
    /// CSR block boundaries (neighbouring states in different 64-state
    /// words and different scheduler blocks), for every worker count.
    #[test]
    fn block_boundary_frontiers_match_serial(
        pairs in proptest::collection::vec((0u32..4096, 0u32..4096), 1..24),
        hops in proptest::collection::vec(0u32..4095, 1..12),
    ) {
        let names: Vec<String> = (0..12).map(|i| format!("b{i}")).collect();
        let mut m = System::new(Alphabet::new(names));
        for &(s, t) in &pairs {
            m.add_transition(State(s as u128), State(t as u128));
        }
        // Boundary stress: edges that step across word boundaries (edge
        // endpoints in adjacent words, hence often adjacent blocks).
        for &h in &hops {
            let s = (h | 63).min(4094); // last state of its word
            m.add_transition(State(s as u128), State(s as u128 + 1));
            m.add_transition(State(s as u128 + 1), State(s as u128));
        }
        let f1 = Formula::ap("b0").and(Formula::ap("b6")).ef();
        let f2 = Formula::eu(
            Formula::ap("b11").not(),
            Formula::ap("b11").and(Formula::ap("b1")),
        );
        let f3 = Formula::ap("b3").not().eg();
        let serial = Checker::new(&m).unwrap();
        for f in [&f1, &f2, &f3] {
            let want = serial.sat(f).unwrap();
            for workers in [2usize, 4, 8] {
                let par = Checker::new(&m).unwrap().with_workers(workers);
                prop_assert_eq!(
                    &par.sat(f).unwrap(),
                    &want,
                    "{workers} workers disagree on {f}"
                );
            }
        }
    }
}

/// A small fleet of mixed-width targets used by the determinism tests:
/// some route explicit, the 22-prop chain routes symbolic under `Auto`.
fn determinism_tasks() -> Vec<(String, Target, Formula)> {
    let mut tasks = Vec::new();
    for w in [3usize, 4, 22] {
        let names: Vec<String> = (0..w).map(|i| format!("x{i}")).collect();
        let systems: Vec<System> = (0..w - 1)
            .map(|i| {
                let a = names[i].as_str();
                let b = names[i + 1].as_str();
                let mut m = System::new(Alphabet::new([a, b]));
                m.add_transition_named(&[], &[a]);
                m.add_transition_named(&[a], &[a, b]);
                m
            })
            .collect();
        let f = Formula::ap("x0").implies(Formula::ap(format!("x{}", w - 1)).ef());
        tasks.push((format!("chain{w}"), Target::composition(systems), f));
    }
    tasks
}

/// Verdicts and sat-state counts are identical across 1/2/4/8 workers for
/// a mixed explicit/symbolic fleet of fixpoint obligations.
#[test]
fn fanout_verdicts_identical_across_worker_counts() {
    type Fingerprint = Vec<(String, Result<(bool, Vec<State>, Option<u128>), String>)>;
    let tasks = determinism_tasks();
    let fingerprint = |workers: usize| -> Fingerprint {
        check_targets_with_workers(&tasks, BackendChoice::Auto, workers)
            .into_iter()
            .map(|(n, r)| (n, r.map(|v| (v.holds, v.violating, v.sat_states))))
            .collect()
    };
    let baseline = fingerprint(1);
    assert!(
        baseline.iter().all(|(_, r)| r.is_ok()),
        "baseline fleet failed: {baseline:?}"
    );
    for workers in [2, 4, 8] {
        assert_eq!(fingerprint(workers), baseline, "worker count {workers}");
    }
}

/// Per-worker BDD managers under the most aggressive maintenance policy
/// (`ForcedEvery(1)`: GC + rehost at every safe point) still produce
/// verdicts identical to the default policy, for every worker count —
/// each scheduler job builds its own `SymbolicModel`, so managers are
/// never shared across threads.
#[test]
fn forced_maintenance_per_worker_managers_are_verdict_invariant() {
    let cfg = GenConfig::default();
    let obligations: Vec<_> = (400..412u64)
        .map(|seed| gen_partitioned_obligation(seed, &cfg))
        .collect();
    let run = |workers: usize, backend: SymbolicBackend| -> Vec<String> {
        compositional_mc::core::scheduler::run_bounded(obligations.len(), workers, |i| {
            match run_obligation_with(&obligations[i], backend) {
                OracleOutcome::Agree(v) => format!("agree:{}", v.symbolic),
                OracleOutcome::Skipped(why) => format!("skip:{why}"),
                OracleOutcome::Disagree(d) => format!("disagree:{d}"),
            }
        })
        .into_iter()
        .map(|r| r.expect("oracle job panicked"))
        .collect()
    };
    let baseline = run(1, SymbolicBackend::default());
    assert!(
        baseline.iter().all(|s| s.starts_with("agree:")),
        "baseline corpus must agree: {baseline:?}"
    );
    let forced = SymbolicBackend::with_maintenance(MaintenanceConfig::forced_every(1));
    for workers in [1usize, 2, 4, 8] {
        assert_eq!(
            run(workers, forced),
            baseline,
            "ForcedEvery(1) with {workers} workers changed a verdict"
        );
    }
}

/// Proof-engine certificates — every step description, outcome and
/// compositionality flag — are identical however wide the fan-out that
/// produced them.
#[test]
fn certificate_steps_identical_across_worker_counts() {
    let mk_components = || -> Vec<Component> {
        (0..4usize)
            .map(|i| {
                let a = format!("v{i}");
                let b = format!("v{}", i + 1);
                let mut m = System::new(Alphabet::new([a.as_str(), b.as_str()]));
                m.add_transition_named(&[], &[&a]);
                m.add_transition_named(&[&a], &[&a, &b]);
                Component::new(format!("c{i}"), m)
            })
            .collect()
    };
    let goals: Vec<Formula> = (0..5usize)
        .map(|i| Formula::ap(format!("v{i}")).implies(Formula::ap("v4").ef()))
        .collect();
    let run = |workers: usize| -> Vec<Vec<(String, bool, bool)>> {
        compositional_mc::core::scheduler::run_bounded(goals.len(), workers, |i| {
            let engine = Engine::new(mk_components());
            let cert = engine
                .prove(&Restriction::trivial(), &goals[i])
                .expect("prove failed");
            cert.steps
                .iter()
                .map(|s| (s.description.clone(), s.ok, s.compositional))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .map(|r| r.expect("prove job panicked"))
        .collect()
    };
    let baseline = run(1);
    assert!(!baseline.is_empty() && baseline.iter().all(|c| !c.is_empty()));
    for workers in [2, 4, 8] {
        assert_eq!(run(workers), baseline, "worker count {workers}");
    }
}

/// The three symbolic image modes and the blocked explicit backend agree
/// on a deterministic spot-check fleet, as full verdicts (holds,
/// witnesses, counts) — the direct assertion without the oracle plumbing.
/// The scheduled leg must be **bit-identical** to the partitioned one:
/// same witness list, same exact sat count.
#[test]
fn image_modes_and_blocked_explicit_agree_on_fleet() {
    let cfg = GenConfig::default();
    for seed in 300..320u64 {
        let o = gen_partitioned_obligation(seed, &cfg);
        let target = Target::composition(o.systems.clone());
        let part = SymbolicBackend::default()
            .with_image_mode(ImageMode::Partitioned)
            .check(&target, &o.restriction, &o.formula);
        let sched = SymbolicBackend::default()
            .with_image_mode(ImageMode::Scheduled)
            .check(&target, &o.restriction, &o.formula);
        let mono = SymbolicBackend::default()
            .with_image_mode(ImageMode::Monolithic)
            .check(&target, &o.restriction, &o.formula);
        let blocked =
            ExplicitBackend::default()
                .with_workers(4)
                .check(&target, &o.restriction, &o.formula);
        let (part, sched, mono, blocked) = match (part, sched, mono, blocked) {
            (Ok(a), Ok(s), Ok(b), Ok(c)) => (a, s, b, c),
            other => panic!("seed {seed}: a backend failed: {other:?}"),
        };
        assert_eq!(part.holds, mono.holds, "seed {seed}: image modes split");
        assert_eq!(part.holds, blocked.holds, "seed {seed}: explicit split");
        assert_eq!(part.sat_states, mono.sat_states, "seed {seed}");
        assert_eq!(part.sat_states, blocked.sat_states, "seed {seed}");
        assert_eq!(part.violating, mono.violating, "seed {seed}");
        // Scheduled is bit-identical to partitioned, and its schedule
        // bookkeeping flows into CheckStats.
        assert_eq!(sched.holds, part.holds, "seed {seed}: scheduled split");
        assert_eq!(
            sched.sat_states, part.sat_states,
            "seed {seed}: scheduled count"
        );
        assert_eq!(
            sched.violating, part.violating,
            "seed {seed}: scheduled witnesses"
        );
        if let Some(st) = &sched.stats.schedule {
            assert!(
                st.clusters_after <= st.clusters_before,
                "seed {seed}: merging grew the cluster count"
            );
            let mut order = st.order.clone();
            order.sort_unstable();
            assert_eq!(
                order,
                (0..st.clusters_after).collect::<Vec<_>>(),
                "seed {seed}: schedule order is not a permutation"
            );
        }
        // Partition bookkeeping flows into the stats: one partition per
        // component that has proper transitions.
        assert!(part.stats.partitions <= o.systems.len(), "seed {seed}");
        assert_eq!(blocked.stats.threads, 4, "seed {seed}");
    }
}

/// `ImageMode::Scheduled` is verdict-invariant across worker counts and
/// schedule configurations: the oracle corpus agrees at 1/2/4/8 workers
/// whether clusters are merged aggressively or not at all, and under the
/// most aggressive maintenance policy (which exercises the re-plan path
/// through rehosting).
#[test]
fn scheduled_mode_is_verdict_invariant_across_workers() {
    let cfg = GenConfig::default();
    let obligations: Vec<_> = (500..512u64)
        .map(|seed| gen_partitioned_obligation(seed, &cfg))
        .collect();
    let run = |workers: usize, backend: SymbolicBackend| -> Vec<String> {
        compositional_mc::core::scheduler::run_bounded(obligations.len(), workers, |i| {
            match run_obligation_with(&obligations[i], backend) {
                OracleOutcome::Agree(v) => format!("agree:{}", v.symbolic),
                OracleOutcome::Skipped(why) => format!("skip:{why}"),
                OracleOutcome::Disagree(d) => format!("disagree:{d}"),
            }
        })
        .into_iter()
        .map(|r| r.expect("oracle job panicked"))
        .collect()
    };
    let baseline = run(1, SymbolicBackend::default());
    assert!(
        baseline.iter().all(|s| s.starts_with("agree:")),
        "baseline corpus must agree: {baseline:?}"
    );
    let scheduled = SymbolicBackend::default().with_image_mode(ImageMode::Scheduled);
    let unmerged = scheduled.with_schedule(ScheduleConfig::no_merging());
    let forced = SymbolicBackend::with_maintenance(MaintenanceConfig::forced_every(1))
        .with_image_mode(ImageMode::Scheduled);
    for workers in [1usize, 2, 4, 8] {
        for (label, backend) in [
            ("scheduled", scheduled),
            ("scheduled+no-merging", unmerged),
            ("scheduled+forced-maintenance", forced),
        ] {
            assert_eq!(
                run(workers, backend),
                baseline,
                "{label} with {workers} workers changed a verdict"
            );
        }
    }
}
