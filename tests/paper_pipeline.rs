//! End-to-end pipeline test: everything the paper does, in order, in one
//! run — component model checking, compositional deduction, certificate
//! reporting — with outcome assertions matching the paper's reported
//! results.

use cmc_testkit::{replay_store, validate_certificate};
use compositional_mc::afs::{afs1, afs2};
use compositional_mc::core::VerificationReport;
use compositional_mc::store::CertStore;
use std::sync::Arc;

#[test]
fn full_paper_reproduction() {
    // §4.2.4: all AFS-1 component specs are true (Figures 7 and 10).
    let fig7 = afs1::verify_server();
    let fig10 = afs1::verify_client();
    assert_eq!(
        fig7.results.iter().map(|(_, ok)| *ok).collect::<Vec<_>>(),
        vec![true; 5],
        "Figure 7 reports five true specs"
    );
    assert_eq!(
        fig10.results.iter().map(|(_, ok)| *ok).collect::<Vec<_>>(),
        vec![true; 6],
        "Figure 10 reports six true specs"
    );

    // §4.3.5: all AFS-2 component specs are true (Figures 15 and 17).
    let fig15 = afs2::verify_server();
    let fig17 = afs2::verify_client();
    assert_eq!(
        fig15.results.iter().map(|(_, ok)| *ok).collect::<Vec<_>>(),
        vec![true; 2],
        "Figure 15 reports two true specs"
    );
    assert_eq!(
        fig17.results.iter().map(|(_, ok)| *ok).collect::<Vec<_>>(),
        vec![true; 1],
        "Figure 17 reports one true spec"
    );

    // §4.2.3: the compositional deductions.
    let mut report = VerificationReport::new("paper reproduction");
    report.push(afs1::prove_afs1_safety());
    report.push(afs1::prove_afs2_liveness());
    assert!(report.all_valid(), "{}", report.to_markdown());

    // §4.3.4: the AFS-2 invariant, compositionally and monolithically.
    for n in 1..=2 {
        let proof = afs2::prove_invariant_compositional(n).unwrap();
        assert!(proof.valid(), "n={n}");
    }
    assert!(afs2::prove_invariant_monolithic(1).unwrap());

    // The final report renders and marks the safety proof compositional.
    let md = report.to_markdown();
    assert!(md.contains("all established"));
    assert!(md.contains("fully compositional"));
}

/// Every certificate the paper pipeline produces replays through the
/// `cmc-testkit` validator: the seed experiments are self-checking, not
/// just asserted-by-construction.
#[test]
fn paper_certificates_replay_through_validator() {
    // The two §4.2.3 deduction certificates.
    let safety = afs1::prove_afs1_safety();
    let liveness = afs1::prove_afs2_liveness();
    for cert in [&safety, &liveness] {
        validate_certificate(cert)
            .unwrap_or_else(|e| panic!("certificate `{}` failed replay: {e}", cert.goal));
    }

    // A store-backed AFS-1 session: every memoized certificate must also
    // replay (including after the cached second proof).
    let store = Arc::new(CertStore::new());
    let engine = afs1::engine().with_store(Arc::clone(&store));
    let r = compositional_mc::ctl::Restriction::new(
        afs1::initial_condition(),
        [compositional_mc::ctl::Formula::True],
    );
    let cert = engine.prove(&r, &afs1::afs1_safety_formula()).unwrap();
    assert!(cert.valid);
    validate_certificate(&cert).unwrap();
    assert!(
        cert.checked_steps().count() > 0,
        "engine proofs must carry backend-checked steps"
    );
    assert!(!cert.backends_used().is_empty());
    // A repeat proof replays the whole deduction verbatim from the store;
    // the replayed certificate must also pass the validator.
    let cert2 = engine.prove(&r, &afs1::afs1_safety_formula()).unwrap();
    validate_certificate(&cert2).unwrap();
    assert_eq!(cert2, cert, "store replay must be verbatim");
    let replayed = replay_store(&store).unwrap();
    assert_eq!(replayed, store.len());
    assert!(replayed > 0);
}

/// The resource reports have the exact shape of the paper's figures
/// (`-- specification ... is true` lines + `resources used` trailer).
#[test]
fn report_format_matches_smv() {
    let out = afs1::verify_server();
    let mut lines = out.report.lines();
    let first = lines.next().unwrap();
    assert!(first.starts_with("-- specification"));
    assert!(first.ends_with("is true"));
    assert!(out.report.contains("resources used:"));
    assert!(out.report.contains("user time:"));
    assert!(out.report.contains("BDD nodes allocated:"));
    assert!(out
        .report
        .contains("BDD nodes representing transition relation:"));
}

/// Orders of magnitude: the component models stay small (hundreds of BDD
/// nodes), matching the paper's 330–2737 range, and the AFS-2 components
/// allocate more nodes than the AFS-1 ones — the same ordering the paper
/// reports.
#[test]
fn resource_numbers_same_shape_as_paper() {
    let grab = |report: &str| -> usize {
        report
            .lines()
            .find(|l| l.starts_with("BDD nodes allocated:"))
            .and_then(|l| l.split(": ").nth(1))
            .and_then(|v| v.trim().parse().ok())
            .expect("report carries node count")
    };
    let s1 = grab(&afs1::verify_server().report);
    let c1 = grab(&afs1::verify_client().report);
    let s2 = grab(&afs2::verify_server().report);
    let c2 = grab(&afs2::verify_client().report);
    // All in the hundreds, like the paper's figures.
    for n in [s1, c1, s2, c2] {
        assert!(n > 50 && n < 10_000, "node count {n} out of expected band");
    }
    // AFS-2 components are bigger than their AFS-1 counterparts.
    assert!(s2 > c1, "AFS-2 server should exceed AFS-1 client");
    assert!(c2 > c1, "AFS-2 client should exceed AFS-1 client");
}
