//! Differential conformance: the explicit backend, the symbolic backend,
//! and `cmc-testkit`'s reference evaluator must agree on a deterministic
//! corpus of ≥ 500 seeded obligations, and every witness either engine
//! produces must replay against the paper's semantics.
//!
//! Any failure here prints a shrunk minimal structure/formula pair plus a
//! `cargo run -p cmc-testkit -- --seed N` line to replay it standalone.

use cmc_testkit::{
    corpus_seeds, gen_obligation, run_obligation, validate_witness, GenConfig, OracleOutcome,
    WitnessClaim,
};
use compositional_mc::ctl::{Checker, Formula, Restriction};
use compositional_mc::symbolic::SymbolicModel;

/// The tentpole acceptance gate: ≥ 500 deterministic obligations through
/// all three evaluators, in full agreement, with every backend witness
/// replayed (witness replay happens inside the oracle — a bogus violating
/// state is reported as a disagreement note).
#[test]
fn five_hundred_obligations_agree_three_ways() {
    let cfg = GenConfig::default();
    let mut seeds: Vec<u64> = corpus_seeds();
    seeds.extend(1_000..1_450u64);
    assert!(seeds.len() >= 500, "corpus too small: {}", seeds.len());

    let mut agreed = 0usize;
    let mut skipped = 0usize;
    for &seed in &seeds {
        let o = gen_obligation(seed, &cfg);
        match run_obligation(&o) {
            OracleOutcome::Agree(_) => agreed += 1,
            OracleOutcome::Skipped(why) => {
                skipped += 1;
                assert!(
                    skipped <= seeds.len() / 50,
                    "too many skipped obligations (last: seed {seed}: {why})"
                );
            }
            OracleOutcome::Disagree(d) => panic!("{d}"),
        }
    }
    assert!(
        agreed >= 500,
        "only {agreed} obligations ran to agreement ({skipped} skipped)"
    );
}

/// Every fair-EG lasso the explicit checker extracts must replay: a real
/// `R*`-path, cycle closing, body holding throughout, every fairness
/// constraint hit inside the loop.
#[test]
fn explicit_fair_lassos_all_replay() {
    let cfg = GenConfig::default();
    let mut replayed = 0usize;
    for seed in 2_000..2_200u64 {
        let o = gen_obligation(seed, &cfg);
        // Fair-EG witnesses only make sense per-system; use the first
        // component and the obligation's fairness set.
        let m = &o.systems[0];
        let checker = Checker::new(m).unwrap();
        let fairness = o.restriction.fairness.clone();
        let body = Formula::True;
        let from = match checker.sat(&Formula::True) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let Ok(Some(path)) = checker.witness_eg_fair(&from, &body, &fairness) else {
            continue;
        };
        let r = Restriction::new(Formula::True, fairness.clone());
        validate_witness(
            m,
            &r,
            &path,
            &WitnessClaim::FairGlobally { f: body, fairness },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: fair lasso failed replay: {e}"));
        replayed += 1;
    }
    assert!(replayed >= 100, "only {replayed} fair lassos replayed");
}

/// Until-witnesses from the explicit checker replay through the
/// validator's `Until` claim.
#[test]
fn explicit_until_witnesses_all_replay() {
    let cfg = GenConfig::default();
    let mut replayed = 0usize;
    for seed in 3_000..3_150u64 {
        let o = gen_obligation(seed, &cfg);
        let m = &o.systems[0];
        let checker = Checker::new(m).unwrap();
        let name = m.alphabet().names()[0].clone();
        let f = Formula::True;
        let g = Formula::ap(&name);
        let Ok(from) = checker.sat(&Formula::True) else {
            continue;
        };
        let Ok(Some(path)) = checker.witness_eu(&from, &f, &g) else {
            continue;
        };
        validate_witness(
            m,
            &Restriction::trivial(),
            &path,
            &WitnessClaim::Until { f, g },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: until witness failed replay: {e}"));
        replayed += 1;
    }
    assert!(replayed >= 50, "only {replayed} until witnesses replayed");
}

/// Symbolic EG lassos lower to `WitnessPath` (via `Trace::loop_start`)
/// and replay on the originating explicit system.
#[test]
fn symbolic_lassos_lower_and_replay() {
    let cfg = GenConfig::default();
    let mut replayed = 0usize;
    for seed in 4_000..4_150u64 {
        let o = gen_obligation(seed, &cfg);
        let m = &o.systems[0];
        let mut sym = SymbolicModel::from_explicit(m);
        let truth = compositional_mc::bdd::Bdd::TRUE;
        let Some(trace) = sym.witness_eg(truth, truth) else {
            continue;
        };
        let path = trace
            .to_witness_path(m.alphabet())
            .expect("trace variables come from the same alphabet");
        validate_witness(
            m,
            &Restriction::trivial(),
            &path,
            &WitnessClaim::FairGlobally {
                f: Formula::True,
                fairness: vec![],
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: symbolic lasso failed replay: {e}"));
        replayed += 1;
    }
    assert!(replayed >= 100, "only {replayed} symbolic lassos replayed");
}
