//! Integration tests for the paper's worked figures:
//! Figure 1 (composition example), Figure 3 (boolean encoding of an
//! integer-valued system), and the state-transition graphs of Figure 4.

use compositional_mc::ctl::{parse, Checker, Restriction};
use compositional_mc::kripke::{Alphabet, State, System};
use compositional_mc::smv::{compile, compile_explicit, parse_module};

/// E1 — Figure 1: `M` toggles `x`, `M'` toggles `y`; their composition has
/// exactly the 12 distinct pairs listed in the figure.
#[test]
fn figure1_composition_is_exact() {
    let mut m = System::new(Alphabet::new(["x"]));
    m.add_transition_named(&[], &["x"]);
    m.add_transition_named(&["x"], &[]);
    let mut mp = System::new(Alphabet::new(["y"]));
    mp.add_transition_named(&[], &["y"]);
    mp.add_transition_named(&["y"], &[]);

    let c = m.compose(&mp);
    let al = c.alphabet().clone();
    let st = |names: &[&str]| State::from_names(&al, names);

    // R* from Figure 1, de-duplicated (the paper lists ({x},{x}) twice and
    // the reflexive pairs explicitly).
    let expected_proper = [
        (st(&[]), st(&["x"])),
        (st(&["y"]), st(&["x", "y"])),
        (st(&["x"]), st(&[])),
        (st(&["x", "y"]), st(&["y"])),
        (st(&[]), st(&["y"])),
        (st(&["x"]), st(&["x", "y"])),
        (st(&["y"]), st(&[])),
        (st(&["x", "y"]), st(&["x"])),
    ];
    assert_eq!(c.proper_transition_count(), expected_proper.len());
    for (s, t) in expected_proper {
        assert!(c.has_transition(s, t));
    }
    // Reflexive pairs for all four states.
    for s in c.states() {
        assert!(c.has_transition(s, s));
    }
    assert_eq!(c.transition_count(), 12);
}

/// E1 — in the composed system of Figure 1, each component's next-step
/// properties survive composition per Rules 2 and 3.
#[test]
fn figure1_rules_transfer() {
    let mut m = System::new(Alphabet::new(["x"]));
    m.add_transition_named(&[], &["x"]);
    m.add_transition_named(&["x"], &[]);
    let mut mp = System::new(Alphabet::new(["y"]));
    mp.add_transition_named(&[], &["y"]);
    mp.add_transition_named(&["y"], &[]);
    let c = m.compose(&mp);
    let checker = Checker::new(&c).unwrap();
    // Existential (Rule 3): M ⊨ !x ⇒ EX x transfers.
    assert!(checker
        .holds_everywhere(&parse("!x -> EX x").unwrap())
        .unwrap());
    // And the dual on y.
    assert!(checker
        .holds_everywhere(&parse("y -> EX !y").unwrap())
        .unwrap());
}

/// E3 — Figure 3: a variable `x : 0..3` is modelled with two booleans
/// `x#0` (low bit) and `x#1` (high bit); the formula `x < 2` maps to
/// `¬x₁` exactly as the paper's mapping prescribes, and the encoded system
/// preserves the original transitions.
#[test]
fn figure3_boolean_encoding() {
    // The counter of Figure 3: x cycles 0 -> 1 -> 2 -> 3 -> 0.
    let src = "MODULE main\nVAR x : 0..3;\n\
               ASSIGN next(x) := case x = 0 : 1; x = 1 : 2; x = 2 : 3; 1 : 0; esac;";
    let module = parse_module(src).unwrap();

    // Symbolic side: x<2 == x=0 ∨ x=1 == ¬(high bit).
    let mut sym = compile(&module).unwrap();
    let x0 = sym.model.prop("x=0").unwrap();
    let x1 = sym.model.prop("x=1").unwrap();
    let lt2 = sym.model.mgr().or(x0, x1);
    let hi = sym.model.state_var("x#1").unwrap().clone();
    let not_hi = sym.model.mgr().nvar(hi.cur);
    assert_eq!(lt2, not_hi, "Figure 3 mapping (x<2) = !x1 must hold");

    // Explicit side: transitions of the encoded system match the original
    // integer system 0->1->2->3->0.
    let exp = compile_explicit(&module).unwrap();
    assert_eq!(exp.system.proper_transition_count(), 4);
    for v in 0u128..4 {
        let next = (v + 1) % 4;
        assert!(exp.system.has_transition(State(v), State(next)));
    }

    // Both engines agree on a sample property: AG (x=3 -> EX x=0).
    let f_text = "AG (x = 3 -> EX x = 0)";
    let module2 = parse_module(&format!("{src}\nSPEC {f_text}")).unwrap();
    let mut sym2 = compile(&module2).unwrap();
    let spec = sym2.specs[0].1.clone();
    let sym_holds = sym2
        .model
        .check(&Restriction::trivial(), &spec)
        .unwrap()
        .holds;
    let exp2 = compile_explicit(&module2).unwrap();
    assert_eq!(sym_holds, exp2.check_spec(0).unwrap());
    assert!(sym_holds);
}

/// E4 — Figure 4: the AFS-1 protocol's run structure. The composed system
/// realises both protocol branches of the figure (fetch and validate).
#[test]
fn figure4_afs1_runs() {
    use compositional_mc::afs::afs1;
    let engine = afs1::engine();
    let composed = engine.composed();
    let vocab = afs1::union_vocabulary();
    let checker = Checker::new(&composed).unwrap();

    // Fetch branch: (nofile, null) -> fetch -> (valid at server, val) ->
    // client valid.
    let fetch_run = vocab
        .parse_formula(
            "sbelief = none & cbelief = nofile & r = null -> \
             EX (r = fetch & EX (sbelief = valid & r = val & EX (cbelief = valid)))",
        )
        .unwrap();
    assert!(checker.holds_everywhere(&fetch_run).unwrap());

    // Validate branch with an invalid copy: the client discards and
    // eventually refetches.
    let validate_run = vocab
        .parse_formula(
            "sbelief = none & cbelief = suspect & r = null & !validFile -> \
             EF (cbelief = nofile & r = null & sbelief = invalid)",
        )
        .unwrap();
    assert!(checker.holds_everywhere(&validate_run).unwrap());
}
