//! Conformance of the frontier-driven explicit kernel (CSR index +
//! worklist fixpoints) introduced for the perf rebuild:
//!
//! * a seeded three-way oracle run (explicit vs symbolic vs reference)
//!   over ≥ 200 obligations on a seed range disjoint from
//!   `tests/conformance.rs`,
//! * proptests pinning the frontier `E[· U ·]` and fair-`EG` fixpoints to
//!   the naïve reference evaluator on random small systems,
//! * a determinism check that the bounded scheduler returns identical
//!   results for every worker count.

use cmc_testkit::{gen_obligation, run_obligation, GenConfig, OracleOutcome, RefEvaluator};
use compositional_mc::core::backend::Target;
use compositional_mc::core::parallel::check_targets_with_workers;
use compositional_mc::core::BackendChoice;
use compositional_mc::ctl::{Checker, Formula, StateSet};
use compositional_mc::kripke::{Alphabet, State, System};
use proptest::prelude::*;

/// ≥ 200 fresh seeded obligations through the three-way oracle — the new
/// kernel sits behind the explicit backend, so every agreement is a
/// differential check of the CSR worklist fixpoints against both the BDD
/// engine and the cycle-analysis reference.
#[test]
fn two_hundred_fresh_obligations_agree_three_ways() {
    let cfg = GenConfig::default();
    let seeds: Vec<u64> = (10_000..10_250u64).collect();
    let mut agreed = 0usize;
    let mut skipped = 0usize;
    for &seed in &seeds {
        let o = gen_obligation(seed, &cfg);
        match run_obligation(&o) {
            OracleOutcome::Agree(_) => agreed += 1,
            OracleOutcome::Skipped(why) => {
                skipped += 1;
                assert!(
                    skipped <= seeds.len() / 50,
                    "too many skipped obligations (last: seed {seed}: {why})"
                );
            }
            OracleOutcome::Disagree(d) => panic!("{d}"),
        }
    }
    assert!(
        agreed >= 200,
        "only {agreed} obligations ran to agreement ({skipped} skipped)"
    );
}

/// The member mask of a `StateSet` (universes here are ≤ 2^7 = 128).
fn mask_of(s: &StateSet) -> u128 {
    s.iter().fold(0u128, |m, st| m | (1u128 << st.0))
}

/// A random system over a fixed small alphabet.
fn arb_system(names: &'static [&'static str]) -> impl Strategy<Value = System> {
    let max = 1u32 << names.len();
    proptest::collection::vec((0..max, 0..max), 0..14).prop_map(move |pairs| {
        let mut m = System::new(Alphabet::new(names.iter().copied()));
        for (s, t) in pairs {
            m.add_transition(State(s as u128), State(t as u128));
        }
        m
    })
}

/// A random propositional formula over given names.
fn arb_prop(names: &'static [&'static str]) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        proptest::sample::select(names.to_vec()).prop_map(Formula::ap),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Frontier `E[a U b]` equals the reference evaluator's sat set.
    #[test]
    fn frontier_eu_matches_reference(
        m in arb_system(&["p", "q", "r"]),
        a in arb_prop(&["p", "q", "r"]),
        b in arb_prop(&["p", "q", "r"]),
    ) {
        let f = a.eu(b);
        let checker = Checker::new(&m).unwrap();
        let reference = RefEvaluator::new(&m).unwrap();
        let got = mask_of(&checker.sat(&f).unwrap());
        let want = reference.sat_fair(&f, &[]).unwrap();
        prop_assert_eq!(got, want, "E U mismatch on {}", f);
    }

    /// Fair-`EG` (the Emerson–Lei frontier loop with per-constraint reach
    /// caching) equals the reference evaluator's cycle analysis.
    #[test]
    fn frontier_fair_eg_matches_reference(
        m in arb_system(&["p", "q", "r"]),
        body in arb_prop(&["p", "q", "r"]),
        c1 in arb_prop(&["p", "q", "r"]),
        c2 in arb_prop(&["p", "q", "r"]),
    ) {
        let f = body.eg();
        let fairness = vec![c1, c2];
        let checker = Checker::new(&m).unwrap();
        let reference = RefEvaluator::new(&m).unwrap();
        let got = mask_of(&checker.sat_fair(&f, &fairness).unwrap());
        let want = reference.sat_fair(&f, &fairness).unwrap();
        prop_assert_eq!(
            got, want,
            "fair EG mismatch on {} under {:?}", f,
            fairness.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }

    /// Mixed EU-under-fairness: `E[a U b]` where quantification ranges
    /// over fair paths only.
    #[test]
    fn frontier_fair_eu_matches_reference(
        m in arb_system(&["p", "q"]),
        a in arb_prop(&["p", "q"]),
        b in arb_prop(&["p", "q"]),
        c in arb_prop(&["p", "q"]),
    ) {
        let f = a.eu(b);
        let fairness = vec![c];
        let checker = Checker::new(&m).unwrap();
        let reference = RefEvaluator::new(&m).unwrap();
        let got = mask_of(&checker.sat_fair(&f, &fairness).unwrap());
        let want = reference.sat_fair(&f, &fairness).unwrap();
        prop_assert_eq!(got, want, "fair EU mismatch on {}", f);
    }
}

/// Scheduler determinism end-to-end: a heterogeneous batch of targets
/// produces identical verdicts (holds, witnesses, sat counts) for every
/// worker count.
#[test]
fn scheduler_results_stable_across_worker_counts() {
    let mut tasks = Vec::new();
    for i in 0..12 {
        let name = format!("v{i}");
        let mut m = System::new(Alphabet::new([name.as_str()]));
        m.add_transition_named(&[], &[&name]);
        tasks.push((
            format!("task{i}"),
            Target::system(m),
            Formula::ap(&name).implies(Formula::ap(&name).ax()),
        ));
    }
    // Strip the timing field before comparing: everything else must be
    // byte-identical regardless of scheduling.
    let digest = |r: Vec<(String, Result<compositional_mc::core::Verdict, String>)>| {
        r.into_iter()
            .map(|(n, v)| (n, v.map(|v| (v.holds, v.violating, v.sat_states))))
            .collect::<Vec<_>>()
    };
    let baseline = digest(check_targets_with_workers(&tasks, BackendChoice::Auto, 1));
    for workers in [2, 4, 8] {
        let got = digest(check_targets_with_workers(
            &tasks,
            BackendChoice::Auto,
            workers,
        ));
        assert_eq!(got, baseline, "worker count {workers}");
    }
}
