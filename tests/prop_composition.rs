//! Property-based tests over random systems: the composition algebra
//! (Lemmas 1–4), the CTL lemmas (5–11), and the soundness of the
//! universal/existential property classes, all validated against direct
//! monolithic model checking.

use compositional_mc::core::lemmas as clemmas;
use compositional_mc::core::{classify, PropertyClass};
use compositional_mc::ctl::{Checker, Formula, Restriction};
use compositional_mc::kripke::{lemmas as klemmas, Alphabet, State, System};
use proptest::prelude::*;

/// A random system over a small alphabet, described by a list of
/// transition pairs (bit patterns).
fn arb_system(names: &'static [&'static str]) -> impl Strategy<Value = System> {
    let n = names.len();
    let max = 1u32 << n;
    proptest::collection::vec((0..max, 0..max), 0..12).prop_map(move |pairs| {
        let mut m = System::new(Alphabet::new(names.iter().copied()));
        for (s, t) in pairs {
            m.add_transition(State(s as u128), State(t as u128));
        }
        m
    })
}

/// A random propositional formula over given names.
fn arb_prop(names: &'static [&'static str]) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        proptest::sample::select(names.to_vec()).prop_map(Formula::ap),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1: composition is commutative and associative on random
    /// systems with overlapping alphabets.
    #[test]
    fn lemma1_random(
        a in arb_system(&["p", "q"]),
        b in arb_system(&["q", "r"]),
        c in arb_system(&["p", "r"]),
    ) {
        prop_assert!(klemmas::lemma1_commutative(&a, &b));
        prop_assert!(klemmas::lemma1_associative(&a, &b, &c));
    }

    /// Lemma 2: equal-alphabet composition is relation union.
    #[test]
    fn lemma2_random(a in arb_system(&["p", "q"]), b in arb_system(&["p", "q"])) {
        prop_assert_eq!(klemmas::lemma2_union(&a, &b), Some(true));
    }

    /// Lemmas 3 and 4 on random systems.
    #[test]
    fn lemma3_lemma4_random(a in arb_system(&["p", "q"]), b in arb_system(&["q", "r"])) {
        prop_assert!(klemmas::lemma3_identity(&a));
        prop_assert!(klemmas::lemma4_expansion(&a, &b));
    }

    /// Lemma 5: expansion preserves arbitrary CTL properties built from a
    /// propositional core (we sample p ⇒ AX q, EF p, AG p and E[p U q]).
    #[test]
    fn lemma5_random(
        m in arb_system(&["p", "q"]),
        f in arb_prop(&["p", "q"]),
        g in arb_prop(&["p", "q"]),
    ) {
        let extra = Alphabet::new(["z"]);
        let candidates = [
            f.clone().implies(g.clone().ax()),
            f.clone().ef(),
            g.clone().ag(),
            f.clone().eu(g.clone()),
            f.clone().implies(g.clone().ex()),
        ];
        for c in candidates {
            prop_assert!(
                clemmas::lemma5_expansion_preserves(&m, &extra, &c).unwrap(),
                "Lemma 5 failed for {c}"
            );
        }
    }

    /// Lemmas 6 and 7: semantic/structural equivalence of next-step
    /// properties on random systems and random propositional formulas.
    #[test]
    fn lemma6_lemma7_random(
        m in arb_system(&["p", "q"]),
        f in arb_prop(&["p", "q"]),
        g in arb_prop(&["p", "q"]),
    ) {
        prop_assert!(clemmas::lemma6_ax_structural(&m, &f, &g).unwrap());
        prop_assert!(clemmas::lemma7_ex_structural(&m, &f, &g).unwrap());
    }

    /// Lemmas 8 and 9: frame conjunction/disjunction on random systems.
    #[test]
    fn lemma8_lemma9_random(
        m in arb_system(&["p", "q"]),
        f in arb_prop(&["p", "q"]),
        g in arb_prop(&["p", "q"]),
        pp in arb_prop(&["z"]),
    ) {
        let extra = Alphabet::new(["z"]);
        prop_assert!(clemmas::lemma8_frame_conjunction(&m, &extra, &f, &g, &pp).unwrap());
        prop_assert!(clemmas::lemma9_frame_disjunction(&m, &extra, &f, &g, &pp).unwrap());
    }

    /// Lemma 10: propositional transfer between alphabets on all states.
    #[test]
    fn lemma10_random(p in arb_prop(&["p", "q"]), bits in 0u32..8) {
        let small = Alphabet::new(["p", "q"]);
        let big = small.union(&Alphabet::new(["z"]));
        prop_assert!(clemmas::lemma10_propositional_transfer(
            &small, &big, &p, State(bits as u128)
        ));
    }

    /// Lemma 11: fairness strengthening preserves p ⇒ AX q.
    #[test]
    fn lemma11_random(
        m in arb_system(&["p", "q"]),
        f in arb_prop(&["p", "q"]),
        g in arb_prop(&["p", "q"]),
        fair in arb_prop(&["p", "q"]),
    ) {
        prop_assert!(clemmas::lemma11_fairness_strengthening(&m, &f, &g, &[fair]).unwrap());
    }

    /// SOUNDNESS of Rule 2 (universal): if `p ⇒ AX q` holds in two random
    /// components, it holds in their composition — validated monolithically.
    #[test]
    fn rule2_sound_random(
        a in arb_system(&["p", "q"]),
        b in arb_system(&["q", "r"]),
        p in arb_prop(&["q"]),
        q in arb_prop(&["q"]),
    ) {
        // p, q over the SHARED variable so both components can evaluate
        // them (the general case goes through expansions; the engine tests
        // cover that path).
        let f = p.clone().implies(q.clone().ax());
        let ca = Checker::new(&a).unwrap().holds_everywhere(&f).unwrap();
        let cb = Checker::new(&b).unwrap().holds_everywhere(&f).unwrap();
        if ca && cb {
            let composed = a.compose(&b);
            prop_assert!(
                Checker::new(&composed).unwrap().holds_everywhere(&f).unwrap(),
                "Rule 2 unsound for {f}"
            );
        }
    }

    /// SOUNDNESS of Rule 3 (existential): `p ⇒ EX q` transfers from one
    /// component.
    #[test]
    fn rule3_sound_random(
        a in arb_system(&["p", "q"]),
        b in arb_system(&["q", "r"]),
        p in arb_prop(&["q"]),
        q in arb_prop(&["q"]),
    ) {
        let f = p.clone().implies(q.clone().ex());
        let ca = Checker::new(&a).unwrap().holds_everywhere(&f).unwrap();
        if ca {
            let composed = a.compose(&b);
            prop_assert!(
                Checker::new(&composed).unwrap().holds_everywhere(&f).unwrap(),
                "Rule 3 unsound for {f}"
            );
        }
    }

    /// SOUNDNESS of Rule 1: a propositional property (trivial fairness)
    /// transfers from one component when evaluated over shared variables.
    #[test]
    fn rule1_sound_random(
        a in arb_system(&["p", "q"]),
        b in arb_system(&["q", "r"]),
        f in arb_prop(&["q"]),
    ) {
        let r = Restriction::trivial();
        prop_assume!(classify(&f, &r).map(|c| c.class) == Some(PropertyClass::Existential));
        let ca = Checker::new(&a).unwrap().check(&r, &f).unwrap().holds;
        if ca {
            let composed = a.compose(&b);
            prop_assert!(
                Checker::new(&composed).unwrap().check(&r, &f).unwrap().holds,
                "Rule 1 unsound for {f}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SOUNDNESS of the positive-existential extension: any formula built
    /// from propositional parts with ∧, ∨, EX, EF, EG, EU that holds in a
    /// component (over shared variables) holds in the composition.
    #[test]
    fn positive_existential_sound_random(
        a in arb_system(&["p", "q"]),
        b in arb_system(&["q", "r"]),
        p1 in arb_prop(&["q"]),
        p2 in arb_prop(&["q"]),
        shape in 0..6,
    ) {
        use compositional_mc::core::property::is_positive_existential;
        let f = match shape {
            0 => p1.clone().ef(),
            1 => p1.clone().eu(p2.clone()),
            2 => p1.clone().implies(p2.clone().ef()),
            3 => p1.clone().eg(),
            4 => p1.clone().ex().or(p2.clone().ex()),
            _ => p1.clone().and(p2.clone().ef()).ef(),
        };
        prop_assert!(is_positive_existential(&f));
        let holds_a = Checker::new(&a).unwrap().holds_everywhere(&f).unwrap();
        if holds_a {
            let composed = a.compose(&b);
            prop_assert!(
                Checker::new(&composed).unwrap().holds_everywhere(&f).unwrap(),
                "positive-existential transfer unsound for {f}"
            );
        }
    }

    /// ... and under fairness constraints over shared variables.
    #[test]
    fn positive_existential_sound_under_fairness(
        a in arb_system(&["p", "q"]),
        b in arb_system(&["q", "r"]),
        p1 in arb_prop(&["q"]),
        fair in arb_prop(&["q"]),
    ) {
        let f = p1.clone().ef();
        let r = Restriction::new(Formula::True, [fair]);
        let holds_a = Checker::new(&a).unwrap().check(&r, &f).unwrap().holds;
        if holds_a {
            let composed = a.compose(&b);
            prop_assert!(
                Checker::new(&composed).unwrap().check(&r, &f).unwrap().holds,
                "fair positive-existential transfer unsound for {f}"
            );
        }
    }
}
