//! Cross-engine validation: the explicit-state checker (`cmc-ctl`), the
//! symbolic checker (`cmc-symbolic`), and the two SMV compilation paths
//! must agree on randomly generated models and formulas.

use compositional_mc::core::{BackendChoice, Component, Engine};
use compositional_mc::ctl::{Checker, Formula, Restriction};
use compositional_mc::kripke::{Alphabet, State, System};
use compositional_mc::smv::{compile, compile_explicit, parse_module};
use compositional_mc::symbolic::SymbolicModel;
use proptest::prelude::*;

fn arb_system(n_props: usize) -> impl Strategy<Value = System> {
    let max = 1u32 << n_props;
    proptest::collection::vec((0..max, 0..max), 0..16).prop_map(move |pairs| {
        let names: Vec<String> = (0..n_props).map(|i| format!("v{i}")).collect();
        let mut m = System::new(Alphabet::new(names));
        for (s, t) in pairs {
            m.add_transition(State(s as u128), State(t as u128));
        }
        m
    })
}

fn arb_formula(n_props: usize) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        (0..n_props).prop_map(|i| Formula::ap(format!("v{i}"))),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|f| f.ex()),
            inner.clone().prop_map(|f| f.ax()),
            inner.clone().prop_map(|f| f.ef()),
            inner.clone().prop_map(|f| f.af()),
            inner.clone().prop_map(|f| f.eg()),
            inner.clone().prop_map(|f| f.ag()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eu(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.au(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Explicit and symbolic checkers agree on arbitrary systems and
    /// arbitrary CTL formulas, without fairness.
    #[test]
    fn engines_agree_unfair(m in arb_system(3), f in arb_formula(3)) {
        let explicit = Checker::new(&m).unwrap().holds_everywhere(&f).unwrap();
        let mut sym = SymbolicModel::from_explicit(&m);
        let symbolic = sym.holds_everywhere(&f).unwrap();
        prop_assert_eq!(explicit, symbolic, "engines disagree on {}", f);
    }

    /// ... and under a random fairness constraint.
    #[test]
    fn engines_agree_fair(
        m in arb_system(3),
        f in arb_formula(3),
        fair in arb_formula(3).prop_filter("propositional fairness", |g| g.is_propositional()),
    ) {
        let r = Restriction::new(Formula::True, [fair]);
        let explicit = Checker::new(&m).unwrap().check(&r, &f).unwrap().holds;
        let mut sym = SymbolicModel::from_explicit(&m);
        let symbolic = sym.check(&r, &f).unwrap().holds;
        prop_assert_eq!(explicit, symbolic, "engines disagree on {} under fairness", f);
    }

    /// ... and under a non-trivial fairness *set*: 1–3 independent
    /// constraints, so the Emerson–Lei conjunction over several `Fᵢ` (not
    /// just the single-constraint special case) is exercised on both
    /// engines.
    #[test]
    fn engines_agree_fair_sets(
        m in arb_system(3),
        f in arb_formula(3),
        fairness in proptest::collection::vec(
            arb_formula(3).prop_filter("propositional fairness", |g| g.is_propositional()),
            1..4,
        ),
        init in arb_formula(3).prop_filter("propositional init", |g| g.is_propositional()),
    ) {
        let r = Restriction::new(init, fairness.clone());
        let explicit = Checker::new(&m).unwrap().check(&r, &f).unwrap().holds;
        let mut sym = SymbolicModel::from_explicit(&m);
        let symbolic = sym.check(&r, &f).unwrap().holds;
        prop_assert_eq!(
            explicit, symbolic,
            "engines disagree on {} under fairness set {:?}",
            f, fairness
        );
    }

    /// A random explicit system round-trips through the symbolic encoding.
    #[test]
    fn symbolic_roundtrip(m in arb_system(3)) {
        let mut sym = SymbolicModel::from_explicit(&m);
        let back = sym.to_explicit();
        prop_assert!(m.equivalent(&back));
    }
}

/// A random component over a fixed alphabet (so that two components can
/// share a proposition through overlapping name sets).
fn arb_component(names: &'static [&'static str]) -> impl Strategy<Value = System> {
    let n = names.len();
    let max = 1u32 << n;
    proptest::collection::vec((0..max, 0..max), 0..12).prop_map(move |pairs| {
        let mut m = System::new(Alphabet::new(names.iter().map(|s| s.to_string())));
        for (s, t) in pairs {
            m.add_transition(State(s as u128), State(t as u128));
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Engine facade reaches the same verdict — and, when valid, a
    /// monolithically confirmed one — whichever backend policy is forced.
    /// The two components share `v1`, so the deduction exercises genuine
    /// composition, not two independent proofs.
    #[test]
    fn engine_backends_agree(
        a in arb_component(&["v0", "v1"]),
        b in arb_component(&["v1", "v2"]),
        f in arb_formula(3),
    ) {
        let r = Restriction::trivial();
        let mk = |choice| {
            Engine::new(vec![
                Component::new("a", a.clone()),
                Component::new("b", b.clone()),
            ])
            .with_backend(choice)
        };
        let auto = mk(BackendChoice::Auto).prove(&r, &f).unwrap();
        let explicit = mk(BackendChoice::Explicit).prove(&r, &f).unwrap();
        let symbolic = mk(BackendChoice::Symbolic).prove(&r, &f).unwrap();
        prop_assert_eq!(auto.valid, explicit.valid, "auto vs explicit on {}", f);
        prop_assert_eq!(auto.valid, symbolic.valid, "auto vs symbolic on {}", f);
        // Soundness cross-check through each backend's monolith.
        if auto.valid {
            prop_assert!(mk(BackendChoice::Explicit).monolithic_check(&r, &f).unwrap());
            prop_assert!(mk(BackendChoice::Symbolic).monolithic_check(&r, &f).unwrap());
        }
    }

    /// ... and under a random fairness constraint.
    #[test]
    fn engine_backends_agree_fair(
        a in arb_component(&["v0", "v1"]),
        b in arb_component(&["v1", "v2"]),
        f in arb_formula(3),
        fair in arb_formula(3).prop_filter("propositional fairness", |g| g.is_propositional()),
    ) {
        let r = Restriction::new(Formula::True, [fair]);
        let mk = |choice| {
            Engine::new(vec![
                Component::new("a", a.clone()),
                Component::new("b", b.clone()),
            ])
            .with_backend(choice)
        };
        let explicit = mk(BackendChoice::Explicit).prove(&r, &f).unwrap();
        let symbolic = mk(BackendChoice::Symbolic).prove(&r, &f).unwrap();
        prop_assert_eq!(explicit.valid, symbolic.valid, "backends disagree on {} under fairness", f);
    }
}

/// Random SMV modules: the symbolic and explicit compilers agree on every
/// spec. Models are generated structurally (random case arms over a small
/// vocabulary) rather than as random text.
#[test]
fn smv_compilers_agree_on_generated_modules() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xAF5);
    for round in 0..30 {
        let n_arms = rng.gen_range(1..4);
        let mut arms = String::new();
        for _ in 0..n_arms {
            let cond = match rng.gen_range(0..4) {
                0 => "s = a".to_string(),
                1 => "s = b & x".to_string(),
                2 => "x".to_string(),
                _ => "!x & s = c".to_string(),
            };
            let val = match rng.gen_range(0..4) {
                0 => "a".to_string(),
                1 => "b".to_string(),
                2 => "{a, c}".to_string(),
                _ => "s".to_string(),
            };
            arms.push_str(&format!("      {cond} : {val};\n"));
        }
        let x_rhs = match rng.gen_range(0..3) {
            0 => "!x",
            1 => "{0, 1}",
            _ => "x",
        };
        let src = format!(
            "MODULE main\nVAR\n  s : {{a, b, c}};\n  x : boolean;\nASSIGN\n  \
             next(s) :=\n    case\n{arms}      1 : s;\n    esac;\n  next(x) := {x_rhs};\n\
             SPEC AG (s = a -> EX (s = a | s = b | s = c))\n\
             SPEC EF (s = c)\n\
             SPEC AG (s = b -> AX (s = b | s = a | s = c))\n\
             SPEC A [!(s = c) U s = c]\n\
             SPEC AG EX x | AG EX !x\n"
        );
        let module = parse_module(&src).unwrap();
        let mut sym = compile(&module).unwrap();
        let exp = compile_explicit(&module).unwrap();
        for (i, (text, f)) in sym.specs.clone().iter().enumerate() {
            let s = sym.model.check(&Restriction::trivial(), f).unwrap().holds;
            let e = exp.check_spec(i).unwrap();
            assert_eq!(s, e, "round {round}: compilers disagree on {text}\n{src}");
        }
    }
}
