//! Conformance of the symbolic engine's memory kernel: garbage
//! collection, reorder-based rehosting, and the bounded computed table
//! must be *invisible* to verdicts.
//!
//! * the three-way oracle (explicit vs symbolic vs reference) re-runs the
//!   same seeds with maintenance disabled and forced at every `k`-th safe
//!   point — every outcome must match class-for-class and verdict-for-
//!   verdict,
//! * proptests drive random systems/formulas through a model with
//!   `gc_now`/`rehost_now` injected mid-run and pin the sat-state counts
//!   to the untouched engine,
//! * a bounded computed table (with evictions observed) must leave sat
//!   sets untouched.

use cmc_testkit::{gen_obligation, run_obligation_with, GenConfig, OracleOutcome};
use compositional_mc::core::SymbolicBackend;
use compositional_mc::ctl::{parse, Formula, Restriction};
use compositional_mc::kripke::{Alphabet, State, System};
use compositional_mc::symbolic::{MaintenanceConfig, SymbolicModel};
use proptest::prelude::*;

/// The three-way oracle over a fresh seed range, once per maintenance
/// schedule: disabled, and forced at every 1st/2nd/5th safe point. For
/// each seed all four runs must land in the same outcome class with the
/// same triple verdict — GC and rehost schedules are semantics-free.
#[test]
fn oracle_verdicts_invariant_under_forced_maintenance() {
    let cfg = GenConfig::default();
    let schedules: Vec<(String, SymbolicBackend)> = std::iter::once((
        "disabled".to_string(),
        SymbolicBackend::with_maintenance(MaintenanceConfig::disabled()),
    ))
    .chain([1u32, 2, 5].iter().map(|&k| {
        (
            format!("forced-every-{k}"),
            SymbolicBackend::with_maintenance(MaintenanceConfig::forced_every(k))
                .cache_capacity(512),
        )
    }))
    .collect();
    let seeds: Vec<u64> = (20_000..20_060u64).collect();
    let mut skipped = 0usize;
    for &seed in &seeds {
        let o = gen_obligation(seed, &cfg);
        let mut baseline = None;
        for (name, backend) in &schedules {
            match run_obligation_with(&o, *backend) {
                OracleOutcome::Agree(v) => match &baseline {
                    None => baseline = Some(v),
                    Some(b) => assert_eq!(
                        *b, v,
                        "seed {seed}: schedule {name} changed the agreed verdict"
                    ),
                },
                OracleOutcome::Skipped(why) => {
                    assert!(
                        baseline.is_none(),
                        "seed {seed}: schedule {name} skipped ({why}) after another agreed"
                    );
                    skipped += 1;
                    break; // skip reasons are schedule-independent (width)
                }
                OracleOutcome::Disagree(d) => {
                    panic!("seed {seed}: schedule {name} disagreed:\n{d}")
                }
            }
        }
    }
    assert!(
        skipped <= seeds.len() / 10,
        "too many skipped obligations ({skipped})"
    );
}

/// A random system over a fixed small alphabet.
fn arb_system(names: &'static [&'static str]) -> impl Strategy<Value = System> {
    let max = 1u32 << names.len();
    proptest::collection::vec((0..max, 0..max), 0..14).prop_map(move |pairs| {
        let mut m = System::new(Alphabet::new(names.iter().copied()));
        for (s, t) in pairs {
            m.add_transition(State(s as u128), State(t as u128));
        }
        m
    })
}

/// A random CTL formula (temporal operators included) over given names.
fn arb_formula(names: &'static [&'static str]) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        proptest::sample::select(names.to_vec()).prop_map(Formula::ap),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            inner.clone().prop_map(|f| f.ex()),
            inner.clone().prop_map(|f| f.ef()),
            inner.clone().prop_map(|f| f.af()),
            inner.clone().prop_map(|f| f.eg()),
            inner.clone().prop_map(|f| f.ag()),
            (inner.clone(), inner).prop_map(|(a, b)| a.eu(b)),
        ]
    })
}

/// Satisfying-state count of `f` over the model's `2^n` state space.
fn sat_states(model: &mut SymbolicModel, f: &Formula, fairness: &[Formula]) -> f64 {
    let n = model.num_state_vars();
    let sat = model.sat_under(f, fairness).unwrap();
    model.mgr_ref().sat_count(sat, 2 * n) / (1u64 << n) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forced GC + rehost at every safe point gives the same sat-state
    /// count as the untouched engine, on arbitrary systems and formulas.
    #[test]
    fn forced_maintenance_preserves_sat_counts(
        m in arb_system(&["p", "q", "r"]),
        f in arb_formula(&["p", "q", "r"]),
    ) {
        let mut plain = SymbolicModel::from_explicit(&m);
        plain.set_maintenance(MaintenanceConfig::disabled());
        let mut forced = SymbolicModel::from_explicit(&m);
        forced.set_maintenance(MaintenanceConfig::forced_every(1));
        let want = sat_states(&mut plain, &f, &[]);
        let got = sat_states(&mut forced, &f, &[]);
        prop_assert_eq!(want, got, "maintenance changed sat set of {}", f);
    }

    /// Same invariance under a fairness constraint (the Emerson–Lei loop
    /// nests fixpoints, so it crosses many more maintenance points).
    #[test]
    fn forced_maintenance_preserves_fair_sat_counts(
        m in arb_system(&["p", "q"]),
        f in arb_formula(&["p", "q"]),
        c in arb_formula(&["p", "q"]),
    ) {
        let fairness = vec![c];
        let mut plain = SymbolicModel::from_explicit(&m);
        plain.set_maintenance(MaintenanceConfig::disabled());
        let mut forced = SymbolicModel::from_explicit(&m);
        forced.set_maintenance(MaintenanceConfig::forced_every(2));
        let want = sat_states(&mut plain, &f, &fairness);
        let got = sat_states(&mut forced, &f, &fairness);
        prop_assert_eq!(want, got, "fair maintenance changed sat set of {}", f);
    }

    /// Explicit `gc_now` + `rehost_now` *between* queries: results
    /// computed after the kernel has collected and changed variable order
    /// must match results computed before.
    #[test]
    fn explicit_gc_and_rehost_between_queries(
        m in arb_system(&["p", "q", "r"]),
        f in arb_formula(&["p", "q", "r"]),
    ) {
        let mut model = SymbolicModel::from_explicit(&m);
        let before = sat_states(&mut model, &f, &[]);
        model.gc_now();
        let after_gc = sat_states(&mut model, &f, &[]);
        prop_assert_eq!(before, after_gc, "gc_now changed sat set of {}", f);
        model.rehost_now();
        let after_rehost = sat_states(&mut model, &f, &[]);
        prop_assert_eq!(before, after_rehost, "rehost_now changed sat set of {}", f);
    }
}

/// A severely bounded computed table (capacity 16, evicting constantly)
/// must not change any verdict on a model big enough to overflow it.
#[test]
fn tiny_cache_preserves_verdicts() {
    let mut sys = System::new(Alphabet::new(["a", "b", "c", "d"]));
    // A 4-bit Gray-code-ish walk with some chords.
    let states: Vec<u128> = vec![
        0b0000, 0b0001, 0b0011, 0b0010, 0b0110, 0b0111, 0b0101, 0b0100,
    ];
    for w in states.windows(2) {
        sys.add_transition(State(w[0]), State(w[1]));
    }
    sys.add_transition(State(0b0100), State(0b0000));
    sys.add_transition(State(0b0011), State(0b1011));
    sys.add_transition(State(0b1011), State(0b0000));
    let corpus = [
        "EF (a & b)",
        "AG (a -> EX (a | b))",
        "AF !d",
        "E [!c U (c & a)]",
        "A [!d U (a | d)]",
    ];
    let r = Restriction::trivial();
    for text in corpus {
        let f = parse(text).unwrap();
        let mut plain = SymbolicModel::from_explicit(&sys);
        let mut bounded = SymbolicModel::from_explicit(&sys);
        bounded.mgr().set_cache_capacity(16);
        let want = plain.check(&r, &f).unwrap().holds;
        let got = bounded.check(&r, &f).unwrap().holds;
        assert_eq!(want, got, "bounded cache changed the verdict on {text}");
        assert!(
            bounded.mgr_ref().stats().cache_evictions > 0,
            "capacity-16 cache never rotated on {text}"
        );
    }
}
