//! Coverage of the error surfaces: every layer must reject bad input with
//! a structured, human-readable error (never a panic), and the Display
//! impls must carry the information a user needs.

use compositional_mc::core::engine::{Component, Engine};
use compositional_mc::core::rules::{rule4, RuleError};
use compositional_mc::ctl::{parse, CheckError, Checker, Restriction};
use compositional_mc::kripke::{Alphabet, System};
use compositional_mc::smv::{parse_module, run_source, DriverError};

#[test]
fn ctl_parse_errors_display() {
    let e = parse("p &").unwrap_err();
    let text = e.to_string();
    assert!(text.contains("parse error"));
    assert!(text.contains("byte"));
}

#[test]
fn checker_unknown_proposition_display() {
    let m = System::new(Alphabet::new(["x"]));
    let c = Checker::new(&m).unwrap();
    let e = c.sat(&parse("zz").unwrap()).unwrap_err();
    assert!(matches!(e, CheckError::UnknownProposition(_)));
    assert!(e.to_string().contains("zz"));
}

#[test]
fn checker_too_large_display() {
    let names: Vec<String> = (0..30).map(|i| format!("p{i}")).collect();
    let m = System::new(Alphabet::new(names));
    let e = Checker::new(&m).unwrap_err();
    assert!(e.to_string().contains("symbolic"));
}

#[test]
fn smv_driver_errors_display() {
    let parse_err = run_source("MODUL main").unwrap_err();
    assert!(matches!(parse_err, DriverError::Parse(_)));
    assert!(parse_err.to_string().contains("parse error"));

    let sem_err = run_source("MODULE main\nVAR x : boolean;\nSPEC unknown_atom").unwrap_err();
    assert!(matches!(sem_err, DriverError::Semantic(_)));
    assert!(sem_err.to_string().contains("unknown"));
}

#[test]
fn smv_line_numbers_in_errors() {
    let e = parse_module("MODULE main\nVAR\n  x : boolean;\n  y : ???;").unwrap_err();
    assert_eq!(e.line, 4);
}

#[test]
fn rule_errors_display() {
    let m = System::new(Alphabet::new(["p", "q"]));
    // Premise failure (no helpful transition).
    let e = rule4(&m, &parse("p").unwrap(), &parse("q").unwrap()).unwrap_err();
    assert!(matches!(e, RuleError::PremiseFailed(_)));
    assert!(e.to_string().contains("premise"));
    // Non-propositional argument.
    let e2 = rule4(&m, &parse("EF p").unwrap(), &parse("q").unwrap()).unwrap_err();
    assert!(e2.to_string().contains("not propositional"));
}

#[test]
fn engine_surfaces_unknown_props() {
    let mut m = System::new(Alphabet::new(["x"]));
    m.add_transition_named(&[], &["x"]);
    let e = Engine::new(vec![Component::new("m", m)]);
    // A formula over a proposition no component declares must panic with a
    // clear message (assert) rather than silently misclassify — catch it.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        e.prove(
            &Restriction::trivial(),
            &parse("ghost -> AX ghost").unwrap(),
        )
    }));
    assert!(
        result.is_err(),
        "unknown proposition must be rejected loudly"
    );
}

#[test]
fn verdict_witnesses_are_bounded() {
    // A property false in every state: the verdict keeps at most
    // MAX_WITNESSES counterexample seeds.
    let names: Vec<String> = (0..8).map(|i| format!("b{i}")).collect();
    let m = System::new(Alphabet::new(names));
    let c = Checker::new(&m).unwrap();
    let v = c
        .check(&Restriction::trivial(), &parse("FALSE").unwrap())
        .unwrap();
    assert!(!v.holds);
    assert!(v.violating.len() <= compositional_mc::ctl::Verdict::MAX_WITNESSES);
}
