//! Boundary tests for the explicit engine's size limits, now unified
//! behind [`ExplicitLimits`]: the dense-universe width (`dense_bits`) is a
//! *mode switch* — past it the engine goes reachable-only rather than
//! refusing — and the only hard guard left is the opt-in state budget
//! (`max_states`), measured in materialised states, not encoded bits.
//! Guards against off-by-one regressions in `Checker::with_limit`, the
//! `ExplicitBackend`, and the SMV driver's explicit compilation.

use compositional_mc::core::{Backend, BackendChoice, BackendError, ExplicitBackend, Target};
use compositional_mc::ctl::{
    CheckError, Checker, ExplicitLimits, Formula, Restriction, MAX_EXPLICIT_PROPS,
};
use compositional_mc::kripke::{Alphabet, System};
use compositional_mc::smv::{
    compile_explicit, compile_explicit_with, parse_module, run_source_with_backend,
};

fn wide_system(n: usize) -> System {
    let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
    System::new(Alphabet::new(names))
}

#[test]
fn dense_checker_accepts_exactly_max_explicit_props() {
    assert_eq!(MAX_EXPLICIT_PROPS, ExplicitLimits::DEFAULT_DENSE_BITS);
    let at = wide_system(MAX_EXPLICIT_PROPS);
    assert!(
        Checker::new(&at).is_ok(),
        "width == MAX_EXPLICIT_PROPS must be accepted"
    );
    assert!(Checker::with_limit(&at, MAX_EXPLICIT_PROPS).is_ok());

    let past = wide_system(MAX_EXPLICIT_PROPS + 1);
    let err = Checker::new(&past).unwrap_err();
    assert!(matches!(
        err,
        CheckError::TooLarge { props, limit }
            if props == MAX_EXPLICIT_PROPS + 1 && limit == MAX_EXPLICIT_PROPS
    ));
}

#[test]
fn checker_custom_limit_boundary_still_checks() {
    // At a small limit the accepted checker must actually run, not just
    // construct.
    let m = wide_system(3);
    let c = Checker::with_limit(&m, 3).unwrap();
    let v = c
        .check(
            &Restriction::trivial(),
            &Formula::ap("v0").ag().or(Formula::True),
        )
        .unwrap();
    assert!(v.holds);
    assert!(Checker::with_limit(&m, 2).is_err());
}

#[test]
fn explicit_backend_widths_past_dense_bits_go_reachable_not_rejected() {
    let backend = ExplicitBackend::with_limits(ExplicitLimits {
        dense_bits: 3,
        max_states: None,
    });
    let at = Target::system(wide_system(3));
    let v = backend
        .check(&at, &Restriction::trivial(), &Formula::True)
        .unwrap();
    assert!(v.holds);
    assert!(v.sat_states.is_some(), "dense mode counts the universe");

    // One bit past dense_bits: the old engine refused with TooLarge; now
    // the reachable kernel enumerates the 16 initial states and checks.
    let past = Target::system(wide_system(4));
    let v = backend
        .check(&past, &Restriction::trivial(), &Formula::True)
        .unwrap();
    assert!(v.holds);
    assert_eq!(v.stats.reachable_states, Some(16));
    assert_eq!(v.sat_states, None, "reachable mode has no universe count");
}

#[test]
fn explicit_backend_state_budget_is_the_only_hard_guard() {
    let tight = ExplicitBackend::with_limits(ExplicitLimits {
        dense_bits: 3,
        max_states: Some(8),
    });
    // 2^4 = 16 initial states exceed an 8-state budget: honest refusal
    // before materialising anything.
    let past = Target::system(wide_system(4));
    let err = tight
        .check(&past, &Restriction::trivial(), &Formula::True)
        .unwrap_err();
    assert!(
        matches!(err, BackendError::StateBudget { budget: 8, .. }),
        "{err}"
    );
    // Exactly at the budget is accepted.
    let at = Target::system(wide_system(3));
    let v = ExplicitBackend::with_limits(ExplicitLimits {
        dense_bits: 2,
        max_states: Some(8),
    })
    .check(&at, &Restriction::trivial(), &Formula::True)
    .unwrap();
    assert_eq!(v.stats.reachable_states, Some(8));
}

/// An SMV module with `enums` three-valued variables (2 encoded bits
/// each) plus `bools` booleans, all stuttering.
fn smv_module(enums: usize, bools: usize) -> String {
    let mut src = String::from("MODULE main\nVAR\n");
    for i in 0..enums {
        src.push_str(&format!("  e{i} : {{a, b, c}};\n"));
    }
    for i in 0..bools {
        src.push_str(&format!("  x{i} : boolean;\n"));
    }
    src.push_str("ASSIGN\n");
    for i in 0..enums {
        src.push_str(&format!("  next(e{i}) := e{i};\n"));
    }
    for i in 0..bools {
        src.push_str(&format!("  next(x{i}) := x{i};\n"));
    }
    src.push_str("SPEC AG 1\n");
    src
}

#[test]
fn smv_explicit_budget_counts_states_not_bits() {
    // 10 three-valued enums: 20 encoded bits, 3^10 = 59049 valid states.
    // The old 20-bit cliff sat exactly here; the state budget sails past
    // it and the boundary is now the exact state count.
    let at = parse_module(&smv_module(10, 0)).unwrap();
    assert!(compile_explicit(&at).is_ok());
    assert!(compile_explicit_with(&at, &ExplicitLimits::budgeted(59049)).is_ok());
    let err = compile_explicit_with(&at, &ExplicitLimits::budgeted(59048)).unwrap_err();
    assert!(
        err.to_string().contains("59049"),
        "error should name the offending state count: {err}"
    );

    // 21 bits (the old hard rejection) now compiles fine by default:
    // 118098 states is well under the default budget.
    let past_old_cliff = parse_module(&smv_module(10, 1)).unwrap();
    let compiled = compile_explicit(&past_old_cliff).expect("21 bits must compile now");
    assert_eq!(compiled.system.alphabet().len(), 21);
}

#[test]
fn smv_driver_auto_routes_by_state_count() {
    // 3^10 = 59049 ≤ 2^16: Auto keeps the explicit engine even though the
    // encoding is 20 bits wide.
    let src = smv_module(10, 0);
    let out = run_source_with_backend(&src, BackendChoice::Explicit)
        .expect("explicit driver must accept a 59049-state model");
    assert!(out.all_true());
    let out = run_source_with_backend(&src, BackendChoice::Auto).unwrap();
    assert!(out.all_true());
    assert!(
        out.report.contains("explicit"),
        "auto under the state threshold should pick the explicit engine:\n{}",
        out.report
    );
    // Doubling past 2^16 states flips Auto to the symbolic engine.
    let wide = smv_module(10, 1);
    let out = run_source_with_backend(&wide, BackendChoice::Auto).unwrap();
    assert!(out.all_true());
    assert!(
        out.report.contains("symbolic"),
        "auto past the state threshold should pick the symbolic engine:\n{}",
        out.report
    );
}
