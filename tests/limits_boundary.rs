//! Boundary tests for the two explicit-engine size limits: a model *at*
//! the limit must be accepted; one past it must be rejected. Guards
//! against off-by-one regressions in `Checker::with_limit`, the
//! `ExplicitBackend`, and the SMV driver's explicit compilation.

use compositional_mc::core::{Backend, BackendChoice, BackendError, ExplicitBackend, Target};
use compositional_mc::ctl::{CheckError, Checker, Formula, Restriction, MAX_EXPLICIT_PROPS};
use compositional_mc::kripke::{Alphabet, System};
use compositional_mc::smv::{
    compile_explicit, parse_module, run_source_with_backend, EXPLICIT_BIT_LIMIT,
};

fn wide_system(n: usize) -> System {
    let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
    System::new(Alphabet::new(names))
}

#[test]
fn checker_accepts_exactly_max_explicit_props() {
    let at = wide_system(MAX_EXPLICIT_PROPS);
    assert!(
        Checker::new(&at).is_ok(),
        "width == MAX_EXPLICIT_PROPS must be accepted"
    );
    assert!(Checker::with_limit(&at, MAX_EXPLICIT_PROPS).is_ok());

    let past = wide_system(MAX_EXPLICIT_PROPS + 1);
    let err = Checker::new(&past).unwrap_err();
    assert!(matches!(
        err,
        CheckError::TooLarge { props, limit }
            if props == MAX_EXPLICIT_PROPS + 1 && limit == MAX_EXPLICIT_PROPS
    ));
}

#[test]
fn checker_custom_limit_boundary_still_checks() {
    // At a small limit the accepted checker must actually run, not just
    // construct.
    let m = wide_system(3);
    let c = Checker::with_limit(&m, 3).unwrap();
    let v = c
        .check(
            &Restriction::trivial(),
            &Formula::ap("v0").ag().or(Formula::True),
        )
        .unwrap();
    assert!(v.holds);
    assert!(Checker::with_limit(&m, 2).is_err());
}

#[test]
fn explicit_backend_accepts_exactly_its_limit() {
    let backend = ExplicitBackend {
        limit: 3,
        ..ExplicitBackend::default()
    };
    let at = Target::system(wide_system(3));
    let v = backend
        .check(&at, &Restriction::trivial(), &Formula::True)
        .unwrap();
    assert!(v.holds);

    let past = Target::system(wide_system(4));
    let err = backend
        .check(&past, &Restriction::trivial(), &Formula::True)
        .unwrap_err();
    assert!(matches!(err, BackendError::TooLarge { props: 4, .. }));
}

/// An SMV module with `enums` three-valued variables (2 encoded bits
/// each) plus `bools` booleans, all stuttering.
fn smv_module(enums: usize, bools: usize) -> String {
    let mut src = String::from("MODULE main\nVAR\n");
    for i in 0..enums {
        src.push_str(&format!("  e{i} : {{a, b, c}};\n"));
    }
    for i in 0..bools {
        src.push_str(&format!("  x{i} : boolean;\n"));
    }
    src.push_str("ASSIGN\n");
    for i in 0..enums {
        src.push_str(&format!("  next(e{i}) := e{i};\n"));
    }
    for i in 0..bools {
        src.push_str(&format!("  next(x{i}) := x{i};\n"));
    }
    src.push_str("SPEC AG 1\n");
    src
}

#[test]
fn smv_explicit_accepts_exactly_the_bit_limit() {
    // 10 three-valued enums = 20 encoded bits = EXPLICIT_BIT_LIMIT, but
    // only 3^10 = 59049 concrete states to enumerate.
    assert_eq!(EXPLICIT_BIT_LIMIT, 20, "update this test with the limit");
    let at = parse_module(&smv_module(10, 0)).unwrap();
    let compiled = compile_explicit(&at).expect("bits == EXPLICIT_BIT_LIMIT must compile");
    assert_eq!(compiled.system.alphabet().len(), EXPLICIT_BIT_LIMIT);

    let past = parse_module(&smv_module(10, 1)).unwrap();
    let err = compile_explicit(&past).unwrap_err();
    assert!(
        err.to_string().contains("21"),
        "error should name the offending bit count: {err}"
    );
}

#[test]
fn smv_driver_explicit_and_auto_accept_the_bit_limit() {
    let src = smv_module(10, 0);
    // Forced explicit: at the limit the driver must not reject.
    let out = run_source_with_backend(&src, BackendChoice::Explicit)
        .expect("explicit driver must accept a 20-bit model");
    assert!(out.all_true());
    // Auto at the limit also stays on the explicit engine.
    let out = run_source_with_backend(&src, BackendChoice::Auto).unwrap();
    assert!(out.all_true());
    assert!(
        out.report.contains("explicit"),
        "auto at the bit limit should pick the explicit engine:\n{}",
        out.report
    );
}
