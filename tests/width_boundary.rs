//! Width-boundary suite for the arbitrary-width explicit kernel.
//!
//! Token-ring compositions at the interesting widths — 24 (last dense), 25
//! (first reachable-only), 33 (past one machine word of universe
//! indexing), 65 (past a `u64` of packed bits), 130 (past the inline
//! `u128`, onto the heap `StateVec` representation) — checked through the
//! `ExplicitBackend`, the measured `Auto` route, and cross-validated
//! against the symbolic engine where the BDD stays tractable. The 30-wide
//! case is the PR's acceptance scenario.

use compositional_mc::core::{
    check_routed, Backend, BackendChoice, BackendKind, ExplicitBackend, SymbolicBackend, Target,
};
use compositional_mc::ctl::{parse, ExplicitLimits, Formula, Restriction};
use compositional_mc::kripke::{Alphabet, System};
use compositional_mc::smv::run_source_with_backend;

/// An `n`-station token ring: station `i` owns `{t_i, t_{i+1 mod n}}` and
/// passes the token forward. With a one-hot start the reachable fragment
/// is exactly the `n` token positions.
fn ring(n: usize) -> Target {
    let stations: Vec<System> = (0..n)
        .map(|i| {
            let here = format!("t{i}");
            let next = format!("t{}", (i + 1) % n);
            let mut m = System::new(Alphabet::new([here.clone(), next.clone()]));
            m.add_transition_named(&[&here], &[&next]);
            m
        })
        .collect();
    Target::composition(stations)
}

/// One-hot initial condition: the token at `t0`, all other props pinned
/// false.
fn one_hot(n: usize) -> Restriction {
    Restriction::with_init(Formula::and_many((0..n).map(|i| {
        let p = Formula::ap(format!("t{i}"));
        if i == 0 {
            p
        } else {
            p.not()
        }
    })))
}

/// The widths this suite pins: last-dense, first-reachable, past a word
/// of universe indexing, past a packed word, past the inline u128.
const WIDTHS: [usize; 5] = [24, 25, 33, 65, 130];

/// A backend whose dense threshold is lowered so every width in [`WIDTHS`]
/// exercises the reachable kernel without enumerating a `2^24` dense
/// universe in a debug test run. The dense/reachable *boundary* itself is
/// pinned separately below at `dense_bits = 12`, where the dense side is
/// cheap; `ExplicitLimits::DEFAULT_DENSE_BITS` stays covered by the
/// `limits_boundary` suite's constructor checks.
fn reachable_backend() -> ExplicitBackend {
    ExplicitBackend::with_limits(ExplicitLimits {
        dense_bits: 12,
        ..ExplicitLimits::default()
    })
}

#[test]
fn explicit_backend_checks_every_width_boundary() {
    for n in WIDTHS {
        let target = ring(n);
        let r = one_hot(n);
        let f = parse("AG EF t0").unwrap();
        let v = reachable_backend()
            .check(&target, &r, &f)
            .unwrap_or_else(|e| panic!("width {n}: {e}"));
        assert!(v.holds, "the token always returns at width {n}");
        assert_eq!(v.stats.backend, BackendKind::Explicit);
        assert_eq!(
            v.stats.reachable_states,
            Some(n as u64),
            "width {n}: the reachable fragment is exactly the token positions"
        );
        assert_eq!(v.sat_states, None, "width {n} has no universe count");
        // And a falsifiable property stays falsifiable at every width.
        let g = parse("AG t0").unwrap();
        let v = reachable_backend().check(&target, &r, &g).unwrap();
        assert!(!v.holds, "the token leaves t0 at width {n}");
    }
}

#[test]
fn dense_reachable_boundary_flips_at_dense_bits() {
    // One bit either side of a configurable dense threshold: at the
    // threshold the engine labels the full universe (and can count it);
    // one past, it interns only the reachable fragment.
    let f = parse("AG EF t0").unwrap();
    let at = reachable_backend()
        .check(&ring(12), &one_hot(12), &f)
        .unwrap();
    assert!(at.holds);
    assert!(at.sat_states.is_some(), "width 12 should run dense");
    assert_eq!(at.stats.reachable_states, None);

    let past = reachable_backend()
        .check(&ring(13), &one_hot(13), &f)
        .unwrap();
    assert!(past.holds);
    assert_eq!(past.sat_states, None);
    assert_eq!(past.stats.reachable_states, Some(13));
}

#[test]
fn auto_routes_every_width_boundary_explicit_when_pinned() {
    for n in WIDTHS {
        let target = ring(n);
        let r = one_hot(n);
        let f = parse("EF t1").unwrap();
        let v = check_routed(BackendChoice::Auto, &target, &r, &f)
            .unwrap_or_else(|e| panic!("width {n}: {e}"));
        assert!(v.holds, "width {n}");
        let route = v.stats.route.expect("routed checks must stamp the route");
        assert_eq!(
            route.planned,
            BackendKind::Explicit,
            "width {n}: a pinned ring estimates ~{} states, under the crossover",
            route.estimated_states
        );
        assert!(!route.fell_back, "width {n} must not need the fallback");
        assert_eq!(v.stats.backend, BackendKind::Explicit);
    }
}

#[test]
fn explicit_agrees_with_symbolic_across_widths() {
    // The BDD engine is cross-checked where its variable count stays
    // cheap to order; 130 vars is exercised explicit-only above.
    for n in [24, 25, 33] {
        let target = ring(n);
        let r = one_hot(n);
        for spec in ["AG EF t0", "AG t0", "EF t2", &format!("EF t{}", n - 1)] {
            let f = parse(spec).unwrap();
            let e = reachable_backend().check(&target, &r, &f).unwrap();
            let s = SymbolicBackend::default().check(&target, &r, &f).unwrap();
            assert_eq!(e.holds, s.holds, "engines disagree on {spec} at width {n}");
        }
    }
}

/// The PR's acceptance scenario: a 30-station ring (30 propositions, past
/// the old 24-prop ceiling) completes through the `ExplicitBackend` with a
/// verdict matching the symbolic engine's.
#[test]
fn thirty_station_ring_completes_explicit_and_matches_symbolic() {
    let target = ring(30);
    let r = one_hot(30);
    let f = parse("AG (t0 -> EF t15)").unwrap();
    let e = ExplicitBackend::default().check(&target, &r, &f).unwrap();
    let s = SymbolicBackend::default().check(&target, &r, &f).unwrap();
    assert!(e.holds);
    assert_eq!(e.holds, s.holds);
    assert_eq!(e.stats.backend, BackendKind::Explicit);
    assert_eq!(e.stats.reachable_states, Some(30));
}

/// The SMV driver's side of the widths: boolean models past the dense
/// width have `2^bits` valid states, so the explicit compilation refuses
/// on the state budget and `Auto` routes them symbolic — every width
/// still *completes*.
#[test]
fn smv_driver_completes_wide_models_symbolically() {
    for n in [25, 33] {
        let vars: String = (0..n).map(|i| format!("  x{i} : boolean;\n")).collect();
        let assigns: String = (0..n).map(|i| format!("  next(x{i}) := x{i};\n")).collect();
        let src = format!("MODULE main\nVAR\n{vars}ASSIGN\n{assigns}SPEC AG (x0 -> AX x0)\n");
        let out = run_source_with_backend(&src, BackendChoice::Auto)
            .unwrap_or_else(|e| panic!("width {n}: {e}"));
        assert!(out.all_true(), "width {n}");
        assert!(
            out.report.contains("symbolic"),
            "width {n} should route symbolic:\n{}",
            out.report
        );
        let err = run_source_with_backend(&src, BackendChoice::Explicit).unwrap_err();
        assert!(
            err.to_string().contains("budgeted"),
            "width {n}: forced explicit should refuse on the state budget, got {err}"
        );
    }
}
