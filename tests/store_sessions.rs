//! End-to-end memoized verification sessions: the certificate store must be
//! *transparent* (store-backed runs return the same verdicts and the same
//! certificates as store-less runs), must actually reuse work (a shared
//! component's obligation is answered from the store on the second
//! composition), and must survive a disk round trip without being trusted
//! blindly.

use compositional_mc::core::{BackendChoice, Component, Engine};
use compositional_mc::ctl::{parse, Restriction};
use compositional_mc::kripke::{Alphabet, System};
use compositional_mc::smv::{run_source, run_source_with_store};
use compositional_mc::store::{CertStore, DiskStore};
use std::sync::Arc;

/// A one-proposition component that can only switch `name` on.
fn rising(name: &str) -> System {
    let mut m = System::new(Alphabet::new([name]));
    m.add_transition_named(&[], &[name]);
    m
}

fn engine(names: &[&str]) -> Engine {
    Engine::new(
        names
            .iter()
            .map(|n| Component::new(format!("m_{n}"), rising(n)))
            .collect(),
    )
}

#[test]
fn store_is_transparent_for_prove() {
    let store = Arc::new(CertStore::new());
    let f = parse("x -> AX x").unwrap();
    let r = Restriction::trivial();

    let bare = engine(&["x", "y", "z"]).prove(&r, &f).unwrap();
    let backed = engine(&["x", "y", "z"]).with_store(Arc::clone(&store));
    let cold = backed.prove(&r, &f).unwrap();
    let warm = backed.prove(&r, &f).unwrap();

    // Identical verdicts AND identical certificates, cold and warm.
    assert_eq!(bare, cold);
    assert_eq!(cold, warm);
    assert!(cold.valid);

    // The warm run re-verified nothing: every lookup it made was a hit.
    let stats = store.stats();
    assert!(stats.hits >= 1, "{stats}");
    let misses_after_warm = stats.misses;
    backed.prove(&r, &f).unwrap();
    assert_eq!(
        store.stats().misses,
        misses_after_warm,
        "warm run missed the store"
    );
}

#[test]
fn store_is_transparent_for_invariants() {
    let store = Arc::new(CertStore::new());
    let inv = parse("x | !x").unwrap();
    let init = parse("!x & !y").unwrap();

    let bare = engine(&["x", "y"])
        .prove_invariant(&inv, &init, &[])
        .unwrap();
    let backed = engine(&["x", "y"]).with_store(Arc::clone(&store));
    let cold = backed.prove_invariant(&inv, &init, &[]).unwrap();
    let warm = backed.prove_invariant(&inv, &init, &[]).unwrap();

    assert_eq!(bare, cold);
    assert_eq!(cold, warm);
    assert!(store.stats().hits >= 1);
}

#[test]
fn shared_component_is_checked_once_across_compositions() {
    let store = Arc::new(CertStore::new());
    let f = parse("x -> AX x").unwrap();
    let r = Restriction::trivial();

    // First composition: {m_x, m_y}. Every obligation is a miss.
    let first = engine(&["x", "y"]).with_store(Arc::clone(&store));
    assert!(first.prove(&r, &f).unwrap().valid);
    let after_first = store.stats();
    assert_eq!(after_first.hits, 0);

    // Second composition: {m_x, m_z}. m_x's obligation must be answered
    // from the store — its step is marked, and the hit counter moves.
    let second = engine(&["x", "z"]).with_store(Arc::clone(&store));
    let cert = second.prove(&r, &f).unwrap();
    assert!(cert.valid);
    assert!(
        cert.steps
            .iter()
            .any(|s| s.description.contains("m_x") && s.description.contains("(cached)")),
        "{cert}"
    );
    let after_second = store.stats();
    assert!(after_second.hits >= 1, "{after_second}");
    // Only the genuinely new obligations (m_z's, and the new deduction
    // itself) were checked.
    assert!(after_second.misses > after_first.misses);
}

/// The same obligation checked under different backends must live under
/// *distinct* store keys: a symbolic verdict answering an explicit query
/// (or vice versa) would let one engine's bug poison the other's cache.
#[test]
fn backend_identity_prevents_cross_backend_cache_aliasing() {
    let store = Arc::new(CertStore::new());
    let f = parse("x -> AX x").unwrap();
    let r = Restriction::trivial();

    let explicit = engine(&["x", "y"])
        .with_backend(BackendChoice::Explicit)
        .with_store(Arc::clone(&store));
    assert!(explicit.prove(&r, &f).unwrap().valid);
    let hits_after_explicit = store.stats().hits;

    // Same components, same formula, symbolic backend: every lookup must
    // miss — nothing of the explicit session may be reused.
    let symbolic = engine(&["x", "y"])
        .with_backend(BackendChoice::Symbolic)
        .with_store(Arc::clone(&store));
    let cert = symbolic.prove(&r, &f).unwrap();
    assert!(cert.valid);
    assert_eq!(
        store.stats().hits,
        hits_after_explicit,
        "a symbolic check reused an explicit verdict"
    );
    assert!(
        !cert
            .steps
            .iter()
            .any(|s| s.description.contains("(cached)")),
        "{cert}"
    );

    // A repeat symbolic run hits its own entries as usual.
    assert!(symbolic.prove(&r, &f).unwrap().valid);
    assert!(store.stats().hits > hits_after_explicit);
}

#[test]
fn session_survives_a_disk_round_trip() {
    let store = Arc::new(CertStore::new());
    let f = parse("x -> AX x").unwrap();
    let r = Restriction::trivial();
    let cold = engine(&["x", "y"])
        .with_store(Arc::clone(&store))
        .prove(&r, &f)
        .unwrap();

    let path = std::env::temp_dir().join(format!("cmc-store-session-{}.json", std::process::id()));
    let disk = DiskStore::new(&path);
    disk.save(&store).unwrap();

    // A fresh process would start from an empty store and load the file.
    let revived = Arc::new(CertStore::new());
    let loaded = disk.load_into(&revived).unwrap();
    assert!(loaded >= 1);
    assert_eq!(revived.stats().disk_rejects, 0);

    let warm = engine(&["x", "y"])
        .with_store(Arc::clone(&revived))
        .prove(&r, &f)
        .unwrap();
    assert_eq!(cold, warm, "certificate changed across the disk round trip");
    assert!(revived.stats().hits >= 1);

    std::fs::remove_file(&path).ok();
}

#[test]
fn smv_sessions_agree_with_plain_runs() {
    let src = "MODULE main\n\
               VAR s : {idle, busy};\n\
               ASSIGN init(s) := idle; next(s) := {idle, busy};\n\
               SPEC AG EX (s = busy)\n\
               SPEC AG (s = idle)";
    let plain = run_source(src).unwrap();

    let store = CertStore::new();
    let cold = run_source_with_store(src, &store).unwrap();
    let warm = run_source_with_store(src, &store).unwrap();

    assert_eq!(plain.results, cold.results);
    assert_eq!(cold.results, warm.results);
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(warm.cache_hits, 2);
    assert!(warm.report.contains("answered from store"));
}

#[test]
fn backend_identity_doubles_entries_with_zero_cross_hits() {
    // Regression for the PR-2 aliasing fix, measured at the entry level:
    // the same obligation discharged under Explicit and then Symbolic
    // must create two disjoint key populations — entry count doubles and
    // the second session's lookups all miss.
    let store = Arc::new(CertStore::new());
    let f = parse("x -> AX x").unwrap();
    let r = Restriction::trivial();

    let explicit = engine(&["x", "y"])
        .with_backend(BackendChoice::Explicit)
        .with_store(Arc::clone(&store));
    assert!(explicit.prove(&r, &f).unwrap().valid);
    let entries_after_explicit = store.len();
    let misses_after_explicit = store.stats().misses;
    assert!(entries_after_explicit > 0);

    let symbolic = engine(&["x", "y"])
        .with_backend(BackendChoice::Symbolic)
        .with_store(Arc::clone(&store));
    assert!(symbolic.prove(&r, &f).unwrap().valid);

    assert_eq!(
        store.len(),
        2 * entries_after_explicit,
        "explicit and symbolic entries must not alias"
    );
    assert_eq!(store.stats().hits, 0, "no lookup may cross backends");
    assert_eq!(
        store.stats().misses,
        2 * misses_after_explicit,
        "the symbolic session must re-derive every obligation"
    );

    // The two verdicts live under distinct keys even for the *same*
    // component obligation.
    let m = rising("x");
    let ke = compositional_mc::store::ObligationKey::holds_everywhere(&m, &f, "explicit");
    let ks = compositional_mc::store::ObligationKey::holds_everywhere(&m, &f, "symbolic");
    assert_ne!(ke, ks, "backend identity must separate key domains");

    // And the whole session's certificates replay through the validator.
    let replayed = cmc_testkit::replay_store(&store).unwrap();
    assert_eq!(replayed, store.len());
}
